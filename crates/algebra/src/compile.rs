//! Compilation of SPJU≠ expressions into UCQ≠ — the bridge that lets the
//! paper's p-minimization machinery run on algebra plans: the core
//! provenance of a plan is `MinProv` of its compiled query.

use prov_query::{Atom, ConjunctiveQuery, Diseq, Term, UnionQuery, Variable};

use crate::expr::{AlgebraError, Condition, Expr};

/// One adjunct under construction: body atoms, disequalities, and the
/// output column terms.
#[derive(Clone, Debug)]
struct Template {
    atoms: Vec<Atom>,
    diseqs: Vec<Diseq>,
    out: Vec<Term>,
}

impl Template {
    /// Substitutes `var := replacement` everywhere. `None` if a
    /// disequality becomes unsatisfiable.
    fn bind(&self, var: Variable, replacement: Term) -> Option<Template> {
        let mut apply = |t: Term| match t {
            Term::Var(v) if v == var => replacement,
            other => other,
        };
        let atoms = self.atoms.iter().map(|a| a.map_terms(&mut apply)).collect();
        let mut diseqs = Vec::with_capacity(self.diseqs.len());
        for d in &self.diseqs {
            let (l, r) = d.sides();
            let (li, ri) = (apply(l), apply(r));
            if li == ri {
                return None;
            }
            match (li, ri) {
                (Term::Var(lv), rt) => diseqs.push(Diseq::new(lv, rt)),
                (lt, Term::Var(rv)) => diseqs.push(Diseq::new(rv, lt)),
                (Term::Const(_), Term::Const(_)) => {} // distinct: vacuous
            }
        }
        let out = self.out.iter().map(|&t| apply(t)).collect();
        Some(Template { atoms, diseqs, out })
    }

    /// Enforces equality of two terms; `None` if impossible.
    fn equate(&self, a: Term, b: Term) -> Option<Template> {
        if a == b {
            return Some(self.clone());
        }
        match (a, b) {
            (Term::Var(v), other) | (other, Term::Var(v)) => self.bind(v, other),
            (Term::Const(_), Term::Const(_)) => None,
        }
    }

    /// Enforces disequality of two terms; `None` if impossible (`t ≠ t`).
    fn disequate(&self, a: Term, b: Term) -> Option<Template> {
        if a == b {
            return None;
        }
        let mut next = self.clone();
        match (a, b) {
            (Term::Var(lv), rt) => next.diseqs.push(Diseq::new(lv, rt)),
            (lt, Term::Var(rv)) => next.diseqs.push(Diseq::new(rv, lt)),
            (Term::Const(_), Term::Const(_)) => {} // distinct constants: vacuous
        }
        Some(next)
    }
}

fn compile_templates(expr: &Expr) -> Vec<Template> {
    match expr {
        Expr::Scan { relation, arity } => {
            let vars: Vec<Term> = (0..*arity).map(|_| Term::Var(Variable::fresh())).collect();
            vec![Template {
                atoms: vec![Atom::new(*relation, vars.clone())],
                diseqs: Vec::new(),
                out: vars,
            }]
        }
        Expr::Select { conditions, input } => {
            let mut templates = compile_templates(input);
            for cond in conditions {
                templates = templates
                    .into_iter()
                    .filter_map(|t| match *cond {
                        Condition::EqCols(l, r) => t.equate(t.out[l], t.out[r]),
                        Condition::EqConst(c, v) => t.equate(t.out[c], Term::Const(v)),
                        Condition::NeqCols(l, r) => t.disequate(t.out[l], t.out[r]),
                        Condition::NeqConst(c, v) => t.disequate(t.out[c], Term::Const(v)),
                    })
                    .collect();
            }
            templates
        }
        Expr::Project { columns, input } => compile_templates(input)
            .into_iter()
            .map(|t| {
                let out = columns.iter().map(|&c| t.out[c]).collect();
                Template { out, ..t }
            })
            .collect(),
        Expr::Product(l, r) => {
            let left = compile_templates(l);
            let right = compile_templates(r);
            let mut out = Vec::with_capacity(left.len() * right.len());
            for lt in &left {
                for rt in &right {
                    // Fresh variables per Scan make the sides disjoint,
                    // except when templates are *reused* across pairs —
                    // rename the right side apart to stay safe.
                    let renamed = rename_template(rt);
                    out.push(Template {
                        atoms: lt.atoms.iter().cloned().chain(renamed.atoms).collect(),
                        diseqs: lt.diseqs.iter().copied().chain(renamed.diseqs).collect(),
                        out: lt.out.iter().copied().chain(renamed.out).collect(),
                    });
                }
            }
            out
        }
        Expr::Union(l, r) => {
            let mut templates = compile_templates(l);
            templates.extend(compile_templates(r));
            templates
        }
    }
}

fn rename_template(t: &Template) -> Template {
    let mut mapping = std::collections::BTreeMap::new();
    let mut apply = |term: Term| match term {
        Term::Var(v) => Term::Var(*mapping.entry(v).or_insert_with(Variable::fresh)),
        c @ Term::Const(_) => c,
    };
    let atoms = t.atoms.iter().map(|a| a.map_terms(&mut apply)).collect();
    let diseqs = t
        .diseqs
        .iter()
        .map(|d| {
            let (l, r) = d.sides();
            match (apply(l), apply(r)) {
                (Term::Var(lv), rt) => Diseq::new(lv, rt),
                (lt, Term::Var(rv)) => Diseq::new(rv, lt),
                _ => unreachable!("renaming maps variables to variables"),
            }
        })
        .collect();
    let out = t.out.iter().map(|&x| apply(x)).collect();
    Template { atoms, diseqs, out }
}

/// Compiles an expression into an equivalent UCQ≠. Returns `Ok(None)` for
/// expressions that are unsatisfiable at compile time (every adjunct
/// dropped by contradictory selections).
pub fn to_query(expr: &Expr) -> Result<Option<UnionQuery>, AlgebraError> {
    expr.arity()?;
    let templates = compile_templates(expr);
    let mut adjuncts = Vec::with_capacity(templates.len());
    for t in templates {
        let head = Atom::of("ans", &t.out);
        if let Ok(q) = ConjunctiveQuery::new(head, t.atoms, t.diseqs) {
            adjuncts.push(q);
        }
    }
    Ok(UnionQuery::new(adjuncts).ok())
}

/// The core-provenance plan of an expression: `MinProv` of its compiled
/// query (Theorem 4.6 applied to algebra plans).
pub fn core_plan(expr: &Expr) -> Result<Option<UnionQuery>, AlgebraError> {
    Ok(to_query(expr)?.map(|q| prov_core::minprov::minprov(&q)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use prov_engine::eval_ucq;
    use prov_storage::{Database, Value};

    fn table_2_database() -> Database {
        let mut db = Database::new();
        db.add("R", &["a", "a"], "s1");
        db.add("R", &["a", "b"], "s2");
        db.add("R", &["b", "a"], "s3");
        db.add("R", &["b", "b"], "s4");
        db
    }

    fn qconj_plan() -> Expr {
        Expr::scan("R", 2)
            .product(Expr::scan("R", 2))
            .select(vec![Condition::EqCols(0, 3), Condition::EqCols(1, 2)])
            .project(vec![0])
    }

    /// The central differential test: algebra evaluation and compiled-query
    /// evaluation produce identical provenance, tuple by tuple.
    fn assert_compilation_faithful(expr: &Expr, db: &Database) {
        let direct = eval(expr, db).unwrap();
        let compiled = to_query(expr).unwrap();
        match compiled {
            None => assert!(direct.is_empty(), "unsatisfiable plan produced tuples"),
            Some(q) => {
                let via_query = eval_ucq(&q, db);
                assert_eq!(
                    direct.len(),
                    via_query.len(),
                    "result sizes differ for {expr}"
                );
                for (t, p) in &direct {
                    assert_eq!(
                        *p,
                        via_query.provenance(t),
                        "provenance differs at {t} for {expr}"
                    );
                }
            }
        }
    }

    #[test]
    fn qconj_compiles_faithfully() {
        assert_compilation_faithful(&qconj_plan(), &table_2_database());
    }

    #[test]
    fn unions_and_constants_compile_faithfully() {
        let db = table_2_database();
        let e = Expr::scan("R", 2)
            .select(vec![Condition::EqConst(0, Value::new("a"))])
            .project(vec![1])
            .union(
                Expr::scan("R", 2)
                    .select(vec![Condition::NeqCols(0, 1)])
                    .project(vec![0]),
            );
        assert_compilation_faithful(&e, &db);
    }

    #[test]
    fn contradictory_selection_compiles_to_none() {
        let e = Expr::scan("R", 2).select(vec![
            Condition::EqConst(0, Value::new("a")),
            Condition::NeqConst(0, Value::new("a")),
        ]);
        assert!(to_query(&e).unwrap().is_none());
        assert!(eval(&e, &table_2_database()).unwrap().is_empty());
    }

    #[test]
    fn eq_then_neq_on_same_columns_is_unsatisfiable() {
        let e = Expr::scan("R", 2).select(vec![Condition::EqCols(0, 1), Condition::NeqCols(0, 1)]);
        assert!(to_query(&e).unwrap().is_none());
    }

    #[test]
    fn core_plan_matches_minprov_of_qconj() {
        // The compiled Qconj plan p-minimizes to the Figure 1 union shape.
        let core = core_plan(&qconj_plan()).unwrap().unwrap();
        assert_eq!(core.len(), 2);
        let db = table_2_database();
        let core_result = eval_ucq(&core, &db);
        assert_eq!(
            core_result.provenance(&prov_storage::Tuple::of(&["a"])),
            prov_semiring::Polynomial::parse("s1 + s2·s3")
        );
    }

    #[test]
    fn self_product_of_shared_subplan_is_renamed_apart() {
        // Product of a subplan with itself must not alias variables.
        let sub = Expr::scan("R", 2).select(vec![Condition::NeqCols(0, 1)]);
        let e = sub.clone().product(sub).project(vec![0, 2]);
        assert_compilation_faithful(&e, &table_2_database());
    }

    #[test]
    fn random_plans_compile_faithfully() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let db = table_2_database();
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let e = random_expr(&mut rng, 3);
            if e.arity().unwrap_or(0) == 0 && matches!(e, Expr::Scan { .. }) {
                continue;
            }
            if e.arity().is_ok() {
                assert_compilation_faithful(&e, &db);
            }
        }
    }

    /// A tiny random plan generator over R/2 (kept well-typed by
    /// construction).
    fn random_expr(rng: &mut impl rand::Rng, depth: usize) -> Expr {
        if depth == 0 {
            return Expr::scan("R", 2);
        }
        match rng.random_range(0..5u8) {
            0 => Expr::scan("R", 2),
            1 => {
                let input = random_expr(rng, depth - 1);
                let arity = input.arity().unwrap();
                let cond = match rng.random_range(0..4u8) {
                    0 => Condition::EqCols(rng.random_range(0..arity), rng.random_range(0..arity)),
                    1 => Condition::NeqCols(0, arity - 1),
                    2 => Condition::EqConst(rng.random_range(0..arity), Value::new("a")),
                    _ => Condition::NeqConst(rng.random_range(0..arity), Value::new("b")),
                };
                // Skip degenerate x != x conditions.
                if let Condition::NeqCols(l, r) = cond {
                    if l == r {
                        return input;
                    }
                }
                input.select(vec![cond])
            }
            2 => {
                let input = random_expr(rng, depth - 1);
                let arity = input.arity().unwrap();
                let keep: Vec<usize> = (0..arity)
                    .filter(|_| rng.random_range(0..2u8) == 0)
                    .collect();
                let keep = if keep.is_empty() { vec![0] } else { keep };
                input.project(keep)
            }
            3 => random_expr(rng, depth - 1).product(Expr::scan("R", 2)),
            _ => {
                let l = random_expr(rng, depth - 1);
                let arity = l.arity().unwrap();
                let r = if arity == 2 {
                    Expr::scan("R", 2)
                } else {
                    // Make a right side of matching arity via projection.
                    let mut cols = Vec::with_capacity(arity);
                    for i in 0..arity {
                        cols.push(i % 2);
                    }
                    Expr::scan("R", 2).project(cols)
                };
                l.union(r)
            }
        }
    }
}
