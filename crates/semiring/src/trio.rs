//! Trio lineage (Benjelloun et al., VLDB J. 2008), as characterized in
//! paper §7 via Green (ICDT 2009): polynomials *without exponents* but with
//! coefficients. A second baseline: the paper observes the core provenance
//! is more minimal than Trio (containing monomials are not omitted in Trio)
//! and carries canonical "core coefficients" that Trio does not.

use std::fmt;

use crate::polynomial::Polynomial;

/// A Trio lineage expression: a squarefree polynomial with coefficients.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct TrioLineage {
    poly: Polynomial,
}

impl TrioLineage {
    /// Extracts Trio lineage from an `N[X]` polynomial: drop exponents
    /// (each monomial becomes its squarefree support), keep and merge
    /// coefficients.
    pub fn from_polynomial(p: &Polynomial) -> Self {
        let mut poly = Polynomial::zero_poly();
        for (m, c) in p.iter() {
            poly.add_occurrences(m.squarefree(), c);
        }
        TrioLineage { poly }
    }

    /// The underlying squarefree polynomial.
    pub fn as_polynomial(&self) -> &Polynomial {
        &self.poly
    }

    /// Number of monomial occurrences.
    pub fn num_occurrences(&self) -> u64 {
        self.poly.num_occurrences()
    }

    /// Total size (factor occurrences).
    pub fn size(&self) -> u64 {
        self.poly.size()
    }
}

impl fmt::Display for TrioLineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.poly, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(text: &str) -> Polynomial {
        Polynomial::parse(text)
    }

    #[test]
    fn drops_exponents_keeps_coefficients() {
        // x·y² + 2z → x·y + 2z (Green ICDT'09 characterization).
        let trio = TrioLineage::from_polynomial(&p("x·y·y + 2·z"));
        assert_eq!(trio.as_polynomial(), &p("x·y + 2·z"));
    }

    #[test]
    fn merges_monomials_that_collapse() {
        // x·x·y + x·y·y → 2·x·y.
        let trio = TrioLineage::from_polynomial(&p("x·x·y + x·y·y"));
        assert_eq!(trio.as_polynomial(), &p("2·x·y"));
    }

    #[test]
    fn keeps_containing_monomials_unlike_core() {
        // s1 + s1·s2·s3: Trio keeps both monomials; the core would drop the
        // containing one (see crate::direct).
        let trio = TrioLineage::from_polynomial(&p("s1 + s1·s2·s3"));
        assert_eq!(trio.num_occurrences(), 2);
    }
}
