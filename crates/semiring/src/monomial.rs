//! Monomials of the provenance semiring `N[X]`: finite multisets of
//! annotations, the image of a single assignment (paper §2.3).
//!
//! The paper's presentation writes monomials "in a form where all
//! coefficients and exponents equal 1" so that monomial occurrences are in
//! bijection with assignments. We keep the multiset (so `s1·s1` has `s1`
//! with multiplicity 2) and track occurrence counts at the polynomial level.

use std::collections::BTreeSet;
use std::fmt;

use crate::annotation::Annotation;
use crate::semiring::CommutativeSemiring;

/// A monomial: a finite multiset of annotations, stored sorted.
///
/// The empty monomial is the multiplicative identity `1`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    /// Sorted (ascending) annotations, with repetitions for exponents.
    factors: Vec<Annotation>,
}

impl Monomial {
    /// The unit monomial `1` (empty product).
    pub fn unit() -> Self {
        Monomial {
            factors: Vec::new(),
        }
    }

    /// A monomial consisting of a single annotation.
    pub fn var(a: Annotation) -> Self {
        Monomial { factors: vec![a] }
    }

    /// Builds a monomial from any collection of annotations (order
    /// irrelevant; duplicates become multiplicities).
    pub fn from_annotations<I: IntoIterator<Item = Annotation>>(iter: I) -> Self {
        let mut factors: Vec<Annotation> = iter.into_iter().collect();
        factors.sort_unstable();
        Monomial { factors }
    }

    /// Builds a monomial from an already-sorted factor vector without
    /// re-sorting — the allocation-minimal path out of a
    /// [`MonomialBuilder`]'s reused buffer.
    pub fn from_sorted(factors: Vec<Annotation>) -> Self {
        debug_assert!(
            factors.windows(2).all(|w| w[0] <= w[1]),
            "factors must be sorted ascending"
        );
        Monomial { factors }
    }

    /// Parses a `·`-separated list of annotation names, e.g. `"s1·s2·s2"`.
    /// `*` is accepted as a separator too. `"1"` denotes the unit monomial.
    pub fn parse(text: &str) -> Self {
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed == "1" {
            return Monomial::unit();
        }
        Monomial::from_annotations(
            trimmed
                .split(['·', '*'])
                .map(|name| Annotation::new(name.trim())),
        )
    }

    /// The total degree (number of factors, counting multiplicity).
    pub fn degree(&self) -> usize {
        self.factors.len()
    }

    /// Whether this is the unit monomial.
    pub fn is_unit(&self) -> bool {
        self.factors.is_empty()
    }

    /// The factors, sorted, with multiplicities.
    pub fn factors(&self) -> &[Annotation] {
        &self.factors
    }

    /// The multiplicity (exponent) of `a` in this monomial.
    pub fn multiplicity(&self, a: Annotation) -> usize {
        self.factors.iter().filter(|&&x| x == a).count()
    }

    /// The support: the set of distinct annotations occurring.
    pub fn support(&self) -> BTreeSet<Annotation> {
        self.factors.iter().copied().collect()
    }

    /// The squarefree reduction: every factor with multiplicity exactly 1.
    ///
    /// This is the per-monomial effect of step II of `MinProv`
    /// (paper Lemma 5.3): the minimized adjunct uses every tuple once.
    pub fn squarefree(&self) -> Monomial {
        let mut factors: Vec<Annotation> = self.factors.clone();
        factors.dedup();
        Monomial { factors }
    }

    /// Whether every factor has multiplicity 1.
    pub fn is_squarefree(&self) -> bool {
        self.factors.windows(2).all(|w| w[0] != w[1])
    }

    /// The product of two monomials (multiset union).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        // Merge two sorted vectors.
        let mut factors = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            if self.factors[i] <= other.factors[j] {
                factors.push(self.factors[i]);
                i += 1;
            } else {
                factors.push(other.factors[j]);
                j += 1;
            }
        }
        factors.extend_from_slice(&self.factors[i..]);
        factors.extend_from_slice(&other.factors[j..]);
        Monomial { factors }
    }

    /// The terseness order on monomials (paper Def 2.15): `self ≤ other`
    /// iff there is an injective index mapping sending every factor of
    /// `self` to an equal factor of `other` — i.e. multiset inclusion.
    pub fn leq(&self, other: &Monomial) -> bool {
        if self.factors.len() > other.factors.len() {
            return false;
        }
        // Both sorted: greedy two-pointer multiset inclusion.
        let mut j = 0;
        for &a in &self.factors {
            while j < other.factors.len() && other.factors[j] < a {
                j += 1;
            }
            if j >= other.factors.len() || other.factors[j] != a {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Strict terseness order: `self ≤ other` but not `other ≤ self`.
    ///
    /// On monomials `≤` is antisymmetric, so this is `leq && !=`.
    pub fn strict_leq(&self, other: &Monomial) -> bool {
        self != other && self.leq(other)
    }

    /// Evaluates the monomial in a semiring `K` under a valuation of its
    /// annotations (the monomial part of the universal property of `N[X]`).
    pub fn eval<K: CommutativeSemiring>(&self, valuation: &mut impl FnMut(Annotation) -> K) -> K {
        K::product(self.factors.iter().map(|&a| valuation(a)))
    }
}

impl std::borrow::Borrow<[Annotation]> for Monomial {
    /// A monomial borrows as its sorted factor slice. Derived
    /// `Eq`/`Ord`/`Hash` on the single `Vec<Annotation>` field delegate to
    /// slice semantics, so coefficient maps keyed by `Monomial` may probe
    /// with a borrowed `&[Annotation]` — what lets
    /// [`crate::Polynomial::add_occurrence`] accumulate a derivation
    /// without allocating a `Monomial` unless the term is new.
    fn borrow(&self) -> &[Annotation] {
        &self.factors
    }
}

/// A reusable factor buffer for building the monomial of one derivation
/// (one assignment's worth of annotations, Def 2.12) without a fresh
/// allocation per derivation.
///
/// The hot evaluation loop clears the buffer, pushes one annotation per
/// matched atom, and hands the sorted slice to
/// [`crate::Polynomial::add_occurrence`]; the backing `Vec` is allocated
/// once and reused across derivations.
#[derive(Clone, Debug, Default)]
pub struct MonomialBuilder {
    factors: Vec<Annotation>,
}

impl MonomialBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        MonomialBuilder::default()
    }

    /// Clears the factor buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.factors.clear();
    }

    /// Appends one factor (order irrelevant; duplicates are
    /// multiplicities).
    pub fn push(&mut self, a: Annotation) {
        self.factors.push(a);
    }

    /// Number of factors currently buffered.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Whether the buffer is empty (the unit monomial).
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Sorts the buffer and returns the canonical factor slice — the key
    /// form [`crate::Polynomial::add_occurrence`] accepts.
    pub fn as_sorted(&mut self) -> &[Annotation] {
        self.factors.sort_unstable();
        &self.factors
    }

    /// Clones the buffered factors out as a `Monomial`.
    pub fn to_monomial(&mut self) -> Monomial {
        self.factors.sort_unstable();
        Monomial::from_sorted(self.factors.clone())
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return f.write_str("1");
        }
        for (i, a) in self.factors.iter().enumerate() {
            if i > 0 {
                f.write_str("·")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl FromIterator<Annotation> for Monomial {
    fn from_iter<I: IntoIterator<Item = Annotation>>(iter: I) -> Self {
        Monomial::from_annotations(iter)
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(text: &str) -> Monomial {
        Monomial::parse(text)
    }

    #[test]
    fn parse_and_display_round_trip() {
        let mono = m("s2·s1·s2");
        assert_eq!(mono.to_string(), "s1·s2·s2");
        assert_eq!(Monomial::parse(&mono.to_string()), mono);
    }

    #[test]
    fn unit_monomial() {
        assert_eq!(m("1"), Monomial::unit());
        assert!(m("").is_unit());
        assert_eq!(Monomial::unit().to_string(), "1");
        assert_eq!(Monomial::unit().degree(), 0);
    }

    #[test]
    fn degree_and_multiplicity() {
        let mono = m("s1·s1·s3");
        assert_eq!(mono.degree(), 3);
        assert_eq!(mono.multiplicity(Annotation::new("s1")), 2);
        assert_eq!(mono.multiplicity(Annotation::new("s3")), 1);
        assert_eq!(mono.multiplicity(Annotation::new("s9")), 0);
    }

    #[test]
    fn mul_is_multiset_union() {
        assert_eq!(m("s1·s3").mul(&m("s2·s1")), m("s1·s1·s2·s3"));
        assert_eq!(m("s1").mul(&Monomial::unit()), m("s1"));
    }

    #[test]
    fn squarefree_reduction() {
        assert_eq!(m("s1·s1·s1").squarefree(), m("s1"));
        assert_eq!(m("s1·s2").squarefree(), m("s1·s2"));
        assert!(m("s1·s2").is_squarefree());
        assert!(!m("s1·s1").is_squarefree());
    }

    #[test]
    fn leq_is_multiset_inclusion() {
        // Paper Def 2.15: injective factor mapping.
        assert!(m("s1").leq(&m("s1·s1")));
        assert!(m("s1·s2").leq(&m("s1·s2·s3")));
        assert!(!m("s1·s1").leq(&m("s1·s2")));
        assert!(!m("s3·s4").leq(&m("s1·s2·s2")));
        assert!(m("1").leq(&m("s1")));
        assert!(m("s1·s2").leq(&m("s1·s2")));
    }

    #[test]
    fn strict_order() {
        assert!(m("s1").strict_leq(&m("s1·s1")));
        assert!(!m("s1·s2").strict_leq(&m("s1·s2")));
    }

    #[test]
    fn example_2_15_from_paper() {
        // m = s1·s2 maps into m' = s1·s2·s2; the converse fails.
        assert!(m("s1·s2").leq(&m("s1·s2·s2")));
        assert!(!m("s1·s2·s2").leq(&m("s1·s2")));
    }

    #[test]
    fn eval_counts_with_multiplicity() {
        use crate::kinds::Natural;
        let mono = m("a_eval·a_eval·b_eval");
        let a = Annotation::new("a_eval");
        let value = mono.eval(&mut |x| if x == a { Natural(2) } else { Natural(3) });
        assert_eq!(value, Natural(12));
    }

    #[test]
    fn support_is_set() {
        let mono = m("s1·s1·s2");
        let support = mono.support();
        assert_eq!(support.len(), 2);
    }
}
