//! Concrete commutative semirings used by the data-management tools the
//! paper motivates (§1, §7): counting, boolean lineage, cost/tropical,
//! fuzzy/Viterbi confidence, and access-control levels.
//!
//! Each is a target of the specialization homomorphism from `N[X]`
//! (see [`crate::polynomial::Polynomial::eval`]); computing on the *core*
//! provenance instead of the full polynomial feeds these tools a smaller
//! input, which is the practical payoff the paper argues for.

use crate::semiring::{CommutativeSemiring, IdempotentSemiring};

/// The counting semiring `(N, +, ·, 0, 1)`: evaluating a query's provenance
/// here yields the number of derivations of each tuple (bag semantics).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash, Default)]
pub struct Natural(pub u64);

impl CommutativeSemiring for Natural {
    fn zero() -> Self {
        Natural(0)
    }
    fn one() -> Self {
        Natural(1)
    }
    fn add(&self, other: &Self) -> Self {
        Natural(self.0.checked_add(other.0).expect("Natural overflow"))
    }
    fn mul(&self, other: &Self) -> Self {
        Natural(self.0.checked_mul(other.0).expect("Natural overflow"))
    }
    fn from_natural(n: u64) -> Self {
        Natural(n)
    }
}

/// The boolean semiring `({false, true}, ∨, ∧, false, true)`: set-semantics
/// presence/absence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash, Default)]
pub struct Boolean(pub bool);

impl CommutativeSemiring for Boolean {
    fn zero() -> Self {
        Boolean(false)
    }
    fn one() -> Self {
        Boolean(true)
    }
    fn add(&self, other: &Self) -> Self {
        Boolean(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        Boolean(self.0 && other.0)
    }
    fn from_natural(n: u64) -> Self {
        Boolean(n > 0)
    }
}

impl IdempotentSemiring for Boolean {}

/// The tropical (min, +) semiring over `N ∪ {∞}`: evaluating provenance here
/// yields the cheapest derivation cost when each input tuple carries a cost.
///
/// `None` represents `∞` (the additive identity).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Tropical(pub Option<u64>);

impl Tropical {
    /// A finite cost.
    pub fn cost(c: u64) -> Self {
        Tropical(Some(c))
    }
    /// The infinite cost (no derivation).
    pub fn infinity() -> Self {
        Tropical(None)
    }
}

impl CommutativeSemiring for Tropical {
    fn zero() -> Self {
        Tropical(None)
    }
    fn one() -> Self {
        Tropical(Some(0))
    }
    fn add(&self, other: &Self) -> Self {
        match (self.0, other.0) {
            (Some(a), Some(b)) => Tropical(Some(a.min(b))),
            (Some(a), None) | (None, Some(a)) => Tropical(Some(a)),
            (None, None) => Tropical(None),
        }
    }
    fn mul(&self, other: &Self) -> Self {
        match (self.0, other.0) {
            (Some(a), Some(b)) => Tropical(Some(a.checked_add(b).expect("Tropical overflow"))),
            _ => Tropical(None),
        }
    }
    fn from_natural(n: u64) -> Self {
        if n == 0 {
            Tropical(None)
        } else {
            Tropical(Some(0))
        }
    }
}

impl IdempotentSemiring for Tropical {}

/// The Viterbi / fuzzy semiring `([0,1], max, ·, 0, 1)`: confidence scores.
///
/// Stored as a fixed-point fraction out of `SCALE` so that `Eq`/`Hash` are
/// exact and semiring laws hold without floating-point caveats.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Confidence(u32);

impl Confidence {
    /// Fixed-point denominator.
    pub const SCALE: u32 = 1_000_000;

    /// Builds a confidence from a float in `[0, 1]`, clamping.
    pub fn from_f64(p: f64) -> Self {
        let clamped = p.clamp(0.0, 1.0);
        Confidence((clamped * f64::from(Self::SCALE)).round() as u32)
    }

    /// This confidence as an `f64` in `[0, 1]`.
    pub fn as_f64(&self) -> f64 {
        f64::from(self.0) / f64::from(Self::SCALE)
    }
}

impl CommutativeSemiring for Confidence {
    fn zero() -> Self {
        Confidence(0)
    }
    fn one() -> Self {
        Confidence(Self::SCALE)
    }
    fn add(&self, other: &Self) -> Self {
        Confidence(self.0.max(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        let prod = u64::from(self.0) * u64::from(other.0) / u64::from(Self::SCALE);
        Confidence(prod as u32)
    }
    fn from_natural(n: u64) -> Self {
        if n == 0 {
            Self::zero()
        } else {
            Self::one()
        }
    }
}

impl IdempotentSemiring for Confidence {}

/// The access-control / trust semiring: clearance levels ordered from most
/// to least permissive, with `+` = min (an alternative derivation can only
/// lower the required clearance) and `·` = max (a joint derivation needs the
/// highest clearance of any part).
///
/// `NeverAllowed` is the additive identity (`0`), `Public` the
/// multiplicative identity (`1`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Clearance {
    /// Anyone may see the tuple (the `1` of the semiring).
    Public,
    /// Requires confidential clearance.
    Confidential,
    /// Requires secret clearance.
    Secret,
    /// Requires top-secret clearance.
    TopSecret,
    /// No clearance suffices (the `0` of the semiring).
    NeverAllowed,
}

impl CommutativeSemiring for Clearance {
    fn zero() -> Self {
        Clearance::NeverAllowed
    }
    fn one() -> Self {
        Clearance::Public
    }
    fn add(&self, other: &Self) -> Self {
        *self.min(other)
    }
    fn mul(&self, other: &Self) -> Self {
        *self.max(other)
    }
    fn from_natural(n: u64) -> Self {
        if n == 0 {
            Clearance::NeverAllowed
        } else {
            Clearance::Public
        }
    }
}

impl IdempotentSemiring for Clearance {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::laws::check_semiring_laws;

    #[test]
    fn natural_laws() {
        check_semiring_laws(&[Natural(0), Natural(1), Natural(2), Natural(7)]);
    }

    #[test]
    fn boolean_laws() {
        check_semiring_laws(&[Boolean(false), Boolean(true)]);
    }

    #[test]
    fn tropical_laws() {
        check_semiring_laws(&[
            Tropical::infinity(),
            Tropical::cost(0),
            Tropical::cost(3),
            Tropical::cost(10),
        ]);
    }

    #[test]
    fn confidence_laws_on_exact_values() {
        // max/· with fixed-point values whose products are exact.
        check_semiring_laws(&[
            Confidence::zero(),
            Confidence::one(),
            Confidence::from_f64(0.5),
            Confidence::from_f64(0.25),
        ]);
    }

    #[test]
    fn clearance_laws() {
        check_semiring_laws(&[
            Clearance::Public,
            Clearance::Confidential,
            Clearance::Secret,
            Clearance::TopSecret,
            Clearance::NeverAllowed,
        ]);
    }

    #[test]
    fn tropical_picks_cheapest_alternative() {
        let a = Tropical::cost(5);
        let b = Tropical::cost(3);
        assert_eq!(a.add(&b), Tropical::cost(3));
        assert_eq!(a.mul(&b), Tropical::cost(8));
    }

    #[test]
    fn clearance_joint_use_is_most_restrictive() {
        let joint = Clearance::Confidential.mul(&Clearance::Secret);
        assert_eq!(joint, Clearance::Secret);
        let alt = Clearance::Confidential.add(&Clearance::Secret);
        assert_eq!(alt, Clearance::Confidential);
    }

    #[test]
    fn confidence_round_trip() {
        let c = Confidence::from_f64(0.75);
        assert!((c.as_f64() - 0.75).abs() < 1e-6);
    }
}
