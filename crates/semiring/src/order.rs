//! The terseness order relation on provenance polynomials (paper §2.4,
//! Definition 2.15).
//!
//! `p ≤ p'` iff there is an injective mapping from monomial occurrences of
//! `p` to monomial occurrences of `p'` such that each monomial is mapped to
//! a monomial that contains it (multiset inclusion). Because occurrences of
//! equal monomials are interchangeable, the injective mapping exists iff a
//! bipartite b-matching between *distinct* monomials (capacities =
//! coefficients) saturates `p` — decided by max-flow.

use crate::flow::{saturating_b_matching, saturating_b_matching_flows};
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;

/// The result of comparing two polynomials under the terseness order.
///
/// Unlike a total order, `≤` on polynomials admits incomparable pairs —
/// this is the engine of the paper's Theorem 3.5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolyOrder {
    /// `p ≤ p'` and `p' ≤ p` (paper: `p = p'`; not necessarily identical).
    Equivalent,
    /// `p ≤ p'` but not `p' ≤ p` (paper: `p < p'`).
    Less,
    /// `p' ≤ p` but not `p ≤ p'`.
    Greater,
    /// Neither `p ≤ p'` nor `p' ≤ p`.
    Incomparable,
}

/// Decides `p ≤ p'` (paper Def 2.15).
pub fn poly_leq(p: &Polynomial, p_prime: &Polynomial) -> bool {
    if p.is_zero_poly() {
        return true;
    }
    if p.num_occurrences() > p_prime.num_occurrences() {
        return false;
    }
    let left: Vec<_> = p.iter().collect();
    let right: Vec<_> = p_prime.iter().collect();
    let left_caps: Vec<u64> = left.iter().map(|&(_, c)| c).collect();
    let right_caps: Vec<u64> = right.iter().map(|&(_, c)| c).collect();
    let mut edges = Vec::new();
    for (i, (m, _)) in left.iter().enumerate() {
        for (j, (m_prime, _)) in right.iter().enumerate() {
            if m.leq(m_prime) {
                edges.push((i, j));
            }
        }
    }
    saturating_b_matching(&left_caps, &right_caps, &edges)
}

/// Decides `p = p'` in the paper's sense: `p ≤ p'` and `p' ≤ p`.
pub fn poly_equiv(p: &Polynomial, p_prime: &Polynomial) -> bool {
    poly_leq(p, p_prime) && poly_leq(p_prime, p)
}

/// Decides strict `p < p'`: `p ≤ p'` but not `p = p'`.
pub fn poly_lt(p: &Polynomial, p_prime: &Polynomial) -> bool {
    poly_leq(p, p_prime) && !poly_leq(p_prime, p)
}

/// A witness for `p ≤ p'`: how many occurrences of each monomial of `p`
/// map to each containing monomial of `p'`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OrderWitness {
    /// `(m, m', count)` triples: `count` occurrences of `m` map into
    /// occurrences of `m'` (with `m ≤ m'`). Counts sum to
    /// `p.num_occurrences()` and respect both sides' coefficients.
    pub assignments: Vec<(Monomial, Monomial, u64)>,
}

/// Decides `p ≤ p'` and, when it holds, exhibits the injective monomial
/// mapping of Def 2.15 explicitly.
pub fn leq_witness(p: &Polynomial, p_prime: &Polynomial) -> Option<OrderWitness> {
    if p.is_zero_poly() {
        return Some(OrderWitness {
            assignments: Vec::new(),
        });
    }
    let left: Vec<_> = p.iter().collect();
    let right: Vec<_> = p_prime.iter().collect();
    let left_caps: Vec<u64> = left.iter().map(|&(_, c)| c).collect();
    let right_caps: Vec<u64> = right.iter().map(|&(_, c)| c).collect();
    let mut edges = Vec::new();
    for (i, (m, _)) in left.iter().enumerate() {
        for (j, (m_prime, _)) in right.iter().enumerate() {
            if m.leq(m_prime) {
                edges.push((i, j));
            }
        }
    }
    let flows = saturating_b_matching_flows(&left_caps, &right_caps, &edges)?;
    let assignments = edges
        .into_iter()
        .zip(flows)
        .filter(|&(_, f)| f > 0)
        .map(|((i, j), f)| (left[i].0.clone(), right[j].0.clone(), f))
        .collect();
    Some(OrderWitness { assignments })
}

/// Full comparison of two polynomials under the terseness order.
pub fn compare(p: &Polynomial, p_prime: &Polynomial) -> PolyOrder {
    match (poly_leq(p, p_prime), poly_leq(p_prime, p)) {
        (true, true) => PolyOrder::Equivalent,
        (true, false) => PolyOrder::Less,
        (false, true) => PolyOrder::Greater,
        (false, false) => PolyOrder::Incomparable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(text: &str) -> Polynomial {
        Polynomial::parse(text)
    }

    #[test]
    fn example_2_16_from_paper() {
        // p1 = s1·s2 + s3 + s3, p2 = s1·s2·s2 + s2·s3 + s3·s4 + s5: p1 < p2.
        let p1 = p("s1·s2 + s3 + s3");
        let p2 = p("s1·s2·s2 + s2·s3 + s3·s4 + s5");
        assert!(poly_leq(&p1, &p2));
        assert!(!poly_leq(&p2, &p1));
        assert!(poly_lt(&p1, &p2));
        assert_eq!(compare(&p1, &p2), PolyOrder::Less);
        assert_eq!(compare(&p2, &p1), PolyOrder::Greater);
    }

    #[test]
    fn intro_example_ordering() {
        // §1: x·y² + 2z ≤ x·y² + xz + yz, not conversely.
        let terse = p("x·y·y + 2·z");
        let fat = p("x·y·y + x·z + y·z");
        assert!(poly_leq(&terse, &fat));
        assert!(!poly_leq(&fat, &terse));
    }

    #[test]
    fn example_2_18_qunion_vs_qconj() {
        // Provenance of tuple (a): s2·s3 + s1 < s2·s3 + s1·s1.
        let union = p("s2·s3 + s1");
        let conj = p("s2·s3 + s1·s1");
        assert!(poly_lt(&union, &conj));
    }

    #[test]
    fn example_3_4_boolean_queries() {
        // s < s·s.
        assert!(poly_lt(&p("s"), &p("s·s")));
    }

    #[test]
    fn reflexive() {
        let q = p("a·b + 2·c");
        assert!(poly_leq(&q, &q));
        assert_eq!(compare(&q, &q), PolyOrder::Equivalent);
    }

    #[test]
    fn zero_is_bottom() {
        assert!(poly_leq(&Polynomial::zero_poly(), &p("x")));
        assert!(!poly_leq(&p("x"), &Polynomial::zero_poly()));
    }

    #[test]
    fn occurrence_counts_matter() {
        // 2·z needs two targets; z alone has only one.
        assert!(!poly_leq(&p("2·z"), &p("z")));
        assert!(poly_leq(&p("2·z"), &p("2·z")));
        assert!(poly_leq(&p("2·z"), &p("z + z·w")));
        assert!(poly_leq(&p("z"), &p("2·z")));
        assert!(poly_lt(&p("z"), &p("2·z")));
    }

    #[test]
    fn injectivity_is_enforced_across_monomials() {
        // Both x and y fit only into x·y; they cannot share it.
        assert!(!poly_leq(&p("x + y"), &p("x·y")));
        assert!(poly_leq(&p("x + y"), &p("x·y + y·z")));
    }

    #[test]
    fn incomparable_pair() {
        let a = p("x·x");
        let b = p("y");
        assert_eq!(compare(&a, &b), PolyOrder::Incomparable);
    }

    #[test]
    fn equivalent_but_not_identical() {
        // p = x + x·y, q = x·y + x: identical here; build a nontrivial
        // equivalence instead: x + x vs 2·x (same polynomial by rep), so use
        // matching freedom: {x·y + x·z} vs {x·z + x·y}.
        let a = p("x·y + x·z");
        let b = p("x·z + x·y");
        assert_eq!(compare(&a, &b), PolyOrder::Equivalent);
    }

    #[test]
    fn lemma_3_6_first_database() {
        // P(QnoPmin, D) = 2·s1²s2²s3·s0 + s1·s2·s3³·s0
        // P(Qalt, D)    =   s1²s2²s3·s0 + s1·s2·s3³·s0  (strictly smaller)
        let no_pmin = p("2·s1·s1·s2·s2·s3·s0 + s1·s2·s3·s3·s3·s0");
        let alt = p("s1·s1·s2·s2·s3·s0 + s1·s2·s3·s3·s3·s0");
        assert!(poly_lt(&alt, &no_pmin));
    }

    #[test]
    fn lemma_3_6_second_database() {
        // On D': P(QnoPmin) = m, P(Qalt) = m + m' with m ≤ m' — strictly greater.
        let no_pmin = p("t1·t2·t3·t4·t4·t0");
        let alt = p("t1·t2·t3·t4·t4·t0 + t4·t1·t2·t3·t4·t0");
        assert!(poly_lt(&no_pmin, &alt));
    }

    #[test]
    fn witness_respects_coefficients_and_containment() {
        let lo = p("s1·s2 + s3 + s3");
        let hi = p("s1·s2·s2 + s2·s3 + s3·s4 + s5");
        let witness = leq_witness(&lo, &hi).expect("Example 2.16 order holds");
        // Every assignment maps a monomial into a containing one.
        for (m, m_prime, count) in &witness.assignments {
            assert!(m.leq(m_prime), "{m} must be ≤ {m_prime}");
            assert!(*count > 0);
        }
        // Total flow covers all of lo's occurrences.
        let total: u64 = witness.assignments.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, lo.num_occurrences());
        // No target monomial over-used.
        use std::collections::BTreeMap;
        let mut used: BTreeMap<&Monomial, u64> = BTreeMap::new();
        for (_, m_prime, count) in &witness.assignments {
            *used.entry(m_prime).or_default() += count;
        }
        for (m_prime, count) in used {
            assert!(count <= hi.coefficient(m_prime));
        }
    }

    #[test]
    fn witness_absent_when_order_fails() {
        assert!(leq_witness(&p("x + y"), &p("x·y")).is_none());
        assert!(leq_witness(&Polynomial::zero_poly(), &p("x")).is_some());
    }

    #[test]
    fn transitivity_spot_checks() {
        let a = p("x");
        let b = p("x·y");
        let c = p("x·y·z + w");
        assert!(poly_leq(&a, &b));
        assert!(poly_leq(&b, &c));
        assert!(poly_leq(&a, &c));
    }
}
