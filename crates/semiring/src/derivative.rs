//! Formal derivatives of provenance polynomials.
//!
//! `∂p/∂x` measures how a query result depends on one input tuple: it is
//! the standard tool for incremental view maintenance deltas over
//! `N[X]`-annotated relations (Green et al.), and the paper's §1 lists
//! view maintenance among the provenance consumers that benefit from
//! compact (core) provenance inputs.

use crate::annotation::Annotation;
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;

/// The formal partial derivative `∂p/∂x`.
///
/// For a monomial `m = x^k · r` (with `x ∤ r`), `∂m/∂x = k · x^(k-1) · r`;
/// the derivative extends linearly to polynomials.
pub fn derivative(p: &Polynomial, x: Annotation) -> Polynomial {
    let mut out = Polynomial::zero_poly();
    for (m, c) in p.iter() {
        let k = m.multiplicity(x) as u64;
        if k == 0 {
            continue;
        }
        let reduced = Monomial::from_annotations(remove_one(m, x));
        out.add_occurrences(reduced, c * k);
    }
    out
}

fn remove_one(m: &Monomial, x: Annotation) -> Vec<Annotation> {
    let mut removed = false;
    let mut factors = Vec::with_capacity(m.degree().saturating_sub(1));
    for &a in m.factors() {
        if a == x && !removed {
            removed = true;
            continue;
        }
        factors.push(a);
    }
    factors
}

/// The sensitivity of `p` to `x`: the number of derivation *slots* that
/// use the tuple tagged `x` (the derivative evaluated at all-ones).
pub fn sensitivity(p: &Polynomial, x: Annotation) -> u64 {
    derivative(p, x).eval(&mut |_| crate::kinds::Natural(1)).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::CommutativeSemiring;

    fn p(text: &str) -> Polynomial {
        Polynomial::parse(text)
    }

    fn a(name: &str) -> Annotation {
        Annotation::new(name)
    }

    #[test]
    fn power_rule() {
        // ∂(x³)/∂x = 3·x².
        assert_eq!(derivative(&p("dx·dx·dx"), a("dx")), p("3·dx·dx"));
    }

    #[test]
    fn product_terms() {
        // ∂(x·y + 2·x·x·z)/∂x = y + 4·x·z.
        let poly = p("dpx·dpy + 2·dpx·dpx·dpz");
        assert_eq!(derivative(&poly, a("dpx")), p("dpy + 4·dpx·dpz"));
    }

    #[test]
    fn derivative_of_absent_variable_is_zero() {
        assert_eq!(
            derivative(&p("u·v"), a("not_in_poly")),
            Polynomial::zero_poly()
        );
    }

    #[test]
    fn linearity() {
        let f = p("la·la + lb");
        let g = p("la·lb");
        let lhs = derivative(&f.add(&g), a("la"));
        let rhs = derivative(&f, a("la")).add(&derivative(&g, a("la")));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn leibniz_rule() {
        // ∂(f·g) = ∂f·g + f·∂g.
        let f = p("pa·pb + pa");
        let g = p("pa + pc");
        let x = a("pa");
        let lhs = derivative(&f.mul(&g), x);
        let rhs = derivative(&f, x).mul(&g).add(&f.mul(&derivative(&g, x)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn sensitivity_counts_usage_slots() {
        // x·y + x·x: x appears in 1 + 2 slots.
        let poly = p("sx·sy + sx·sx");
        assert_eq!(sensitivity(&poly, a("sx")), 3);
        assert_eq!(sensitivity(&poly, a("sy")), 1);
        assert_eq!(sensitivity(&poly, a("sz")), 0);
    }

    #[test]
    fn core_provenance_has_lower_sensitivity() {
        // The core drops containing monomials and exponents, so no tuple
        // can become *more* used.
        use crate::direct::core_polynomial;
        let full = p("cs1·cs1·cs1 + 3·cs1·cs2·cs3 + 3·cs2·cs4·cs5");
        let core = core_polynomial(&full);
        for name in ["cs1", "cs2", "cs3", "cs4", "cs5"] {
            assert!(
                sensitivity(&core, a(name)) <= sensitivity(&full, a(name)),
                "sensitivity to {name} increased"
            );
        }
    }
}
