//! Direct core-provenance computation on raw polynomials — the PTIME part
//! of paper Theorem 5.1, via Corollary 5.6:
//!
//! > Up to number of equal monomial occurrences, `p_III` may be obtained
//! > from `p` by removing all the multiple occurrences of the same variable
//! > in each monomial, and omitting every monomial `m_i` in `p` that
//! > includes some monomial `m_j` in `p`.
//!
//! The exact coefficient computation (automorphism counting, Lemmas
//! 5.7/5.9) needs the database and lives in `prov-core::direct`.

use crate::monomial::Monomial;
use crate::polynomial::Polynomial;

/// The PTIME core-provenance transformation (paper Corollary 5.6).
///
/// Returns the core provenance of `p` *up to coefficients*: monomials are
/// the squarefree supports of `p`'s minimal monomials; each coefficient is
/// whatever falls out of the transformation and is only guaranteed correct
/// when it equals the automorphism count of the corresponding p-minimal
/// adjunct (see [`Polynomial`] docs and `prov-core::direct::exact_core`).
pub fn core_polynomial(p: &Polynomial) -> Polynomial {
    // Step II effect (Lemma 5.3): squarefree every monomial, keeping
    // occurrence counts.
    let mut squarefree = Polynomial::zero_poly();
    for (m, c) in p.iter() {
        squarefree.add_occurrences(m.squarefree(), c);
    }
    // Step III effect (Lemma 5.5): drop every monomial that strictly
    // includes another monomial of the polynomial.
    let monomials: Vec<&Monomial> = squarefree.monomials().collect();
    let mut result = Polynomial::zero_poly();
    for (m, c) in squarefree.iter() {
        let strictly_contains_smaller =
            monomials.iter().any(|other| Monomial::strict_leq(other, m));
        if !strictly_contains_smaller {
            result.add_occurrences(m.clone(), c);
        }
    }
    result
}

/// Whether `p` is already a core polynomial shape: all monomials squarefree
/// and no monomial strictly contains another. (Coefficients are not — and
/// cannot be — validated without the database; Theorem 6.2.)
pub fn is_core_shape(p: &Polynomial) -> bool {
    let monomials: Vec<&Monomial> = p.monomials().collect();
    monomials.iter().all(|m| m.is_squarefree())
        && monomials
            .iter()
            .all(|m| !monomials.iter().any(|other| Monomial::strict_leq(other, m)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{poly_leq, poly_lt};

    fn p(text: &str) -> Polynomial {
        Polynomial::parse(text)
    }

    #[test]
    fn example_5_2_to_5_8_pipeline() {
        // Provenance of Q̂ on D̂ (Example 5.2):
        //   s1·s1·s1 + s2·s3·s1 + s3·s1·s2 + s1·s2·s3 + s2·s4·s5 + s4·s5·s2 + s5·s2·s4
        // = s1³ + 3·s1·s2·s3 + 3·s2·s4·s5.
        let full = p("s1·s1·s1 + 3·s1·s2·s3 + 3·s2·s4·s5");
        let core = core_polynomial(&full);
        // Example 5.8: s1 + s2·s4·s5 + s4·s5·s2 + s5·s2·s4 = s1 + 3·s2·s4·s5.
        assert_eq!(core, p("s1 + 3·s2·s4·s5"));
    }

    #[test]
    fn squarefree_step_alone() {
        // s1·s1 → s1 (Example 5.4's effect on the first adjunct's monomial).
        assert_eq!(core_polynomial(&p("s1·s1")), p("s1"));
    }

    #[test]
    fn containing_monomials_are_dropped() {
        assert_eq!(core_polynomial(&p("s1 + s1·s2·s3")), p("s1"));
    }

    #[test]
    fn equal_supports_are_kept_with_merged_counts() {
        // No strict containment between equal monomials.
        assert_eq!(core_polynomial(&p("x·y + x·y")), p("2·x·y"));
    }

    #[test]
    fn incomparable_monomials_all_survive() {
        let q = p("a·b + c·d + a·c");
        assert_eq!(core_polynomial(&q), q);
        assert!(is_core_shape(&q));
    }

    #[test]
    fn core_is_leq_original() {
        for text in [
            "s1·s1·s1 + 3·s1·s2·s3 + 3·s2·s4·s5",
            "x·y·y + 2·z",
            "a + a·b + a·b·c",
            "m·n + n·o + m·m·o",
        ] {
            let original = p(text);
            let core = core_polynomial(&original);
            assert!(
                poly_leq(&core, &original),
                "core of {original} must be ≤ it, got {core}"
            );
        }
    }

    #[test]
    fn core_is_idempotent() {
        let original = p("s1·s1·s1 + 3·s1·s2·s3 + 3·s2·s4·s5");
        let once = core_polynomial(&original);
        let twice = core_polynomial(&once);
        assert_eq!(once, twice);
        assert!(is_core_shape(&once));
    }

    #[test]
    fn zero_polynomial_core_is_zero() {
        assert_eq!(
            core_polynomial(&Polynomial::zero_poly()),
            Polynomial::zero_poly()
        );
        assert!(is_core_shape(&Polynomial::zero_poly()));
    }

    #[test]
    fn core_strictly_smaller_when_query_was_not_pminimal() {
        let original = p("s2·s3 + s1·s1"); // Qconj on tuple (a), Example 2.14
        let core = core_polynomial(&original); // = s2·s3 + s1, Qunion's provenance
        assert_eq!(core, p("s2·s3 + s1"));
        assert!(poly_lt(&core, &original));
    }

    #[test]
    fn is_core_shape_rejects_non_squarefree() {
        assert!(!is_core_shape(&p("x·x")));
        assert!(!is_core_shape(&p("a + a·b")));
        assert!(is_core_shape(&p("a + b·c")));
    }
}
