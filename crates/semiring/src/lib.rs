//! Provenance semirings and the terseness order on provenance polynomials.
//!
//! This crate is the algebraic substrate of `provmin`, a reproduction of
//! *"On Provenance Minimization"* (Amsterdamer, Deutch, Milo, Tannen,
//! PODS 2011). It provides:
//!
//! * the commutative-semiring abstraction and the concrete semirings that
//!   downstream data-management tools evaluate provenance in
//!   ([`CommutativeSemiring`] and the concrete semirings re-exported at
//!   the crate root: [`Natural`], [`Boolean`], [`Tropical`], …);
//! * the provenance semiring `N[X]` itself: interned [`Annotation`]s,
//!   [`Monomial`]s (one per assignment) and [`Polynomial`]s (paper §2.3);
//! * the terseness **order relation** `p ≤ p'` on polynomials
//!   (paper Definition 2.15), decided by bipartite b-matching ([`order`]);
//! * the PTIME **direct core-provenance** transformation of
//!   Corollary 5.6 ([`direct`]);
//! * the coarser provenance models the paper compares against in §7:
//!   [`why::WhyProvenance`] and [`trio::TrioLineage`].

#![warn(missing_docs)]

mod annotation;
mod flow;
mod kinds;
mod monomial;
mod polynomial;
mod semiring;

pub mod derivative;
pub mod direct;
pub mod order;
pub mod trio;
pub mod why;

pub use annotation::Annotation;
pub use flow::{saturating_b_matching, saturating_b_matching_flows, FlowNetwork};
pub use kinds::{Boolean, Clearance, Confidence, Natural, Tropical};
pub use monomial::{Monomial, MonomialBuilder};
pub use polynomial::Polynomial;
pub use semiring::{CommutativeSemiring, IdempotentSemiring};
