//! Dinic's maximum-flow algorithm on small integer-capacity networks.
//!
//! Used to decide the polynomial order relation (paper Def 2.15): the
//! injective mapping of monomial occurrences is a bipartite b-matching
//! between *distinct* monomials with coefficient capacities, which is a
//! max-flow question. Working at the distinct-monomial level keeps the
//! check polynomial even when coefficients are astronomically large.

/// A directed flow network with integer capacities.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// Per-node adjacency: indices into `edges`.
    adj: Vec<Vec<usize>>,
    /// Edge list; `edges[i ^ 1]` is the reverse edge of `edges[i]`.
    edges: Vec<Edge>,
}

#[derive(Clone, Copy, Debug)]
struct Edge {
    to: usize,
    cap: u64,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap` (and its
    /// zero-capacity residual counterpart). Returns the edge id, usable
    /// with [`FlowNetwork::flow_on`] after a max-flow run.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> usize {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        let id = self.edges.len();
        self.edges.push(Edge { to, cap });
        self.edges.push(Edge { to: from, cap: 0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// The flow pushed through edge `id` (the reverse edge's residual).
    pub fn flow_on(&self, id: usize) -> u64 {
        self.edges[id ^ 1].cap
    }

    /// Computes the maximum flow from `source` to `sink` (Dinic).
    pub fn max_flow(&mut self, source: usize, sink: usize) -> u64 {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.adj.len();
        let mut total = 0u64;
        let mut level = vec![-1i32; n];
        let mut it = vec![0usize; n];
        loop {
            // BFS: build the level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[source] = 0;
            let mut queue = std::collections::VecDeque::from([source]);
            while let Some(v) = queue.pop_front() {
                for &eid in &self.adj[v] {
                    let e = self.edges[eid];
                    if e.cap > 0 && level[e.to] < 0 {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] < 0 {
                return total;
            }
            it.iter_mut().for_each(|i| *i = 0);
            // DFS blocking flow.
            loop {
                let pushed = self.dfs(source, sink, u64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, v: usize, sink: usize, limit: u64, level: &[i32], it: &mut [usize]) -> u64 {
        if v == sink {
            return limit;
        }
        while it[v] < self.adj[v].len() {
            let eid = self.adj[v][it[v]];
            let Edge { to, cap } = self.edges[eid];
            if cap > 0 && level[to] == level[v] + 1 {
                let pushed = self.dfs(to, sink, limit.min(cap), level, it);
                if pushed > 0 {
                    self.edges[eid].cap -= pushed;
                    self.edges[eid ^ 1].cap += pushed;
                    return pushed;
                }
            }
            it[v] += 1;
        }
        0
    }
}

/// Decides whether a bipartite b-matching saturating the left side exists.
///
/// `left[i]` and `right[j]` are supplies/capacities; `edges` lists
/// admissible `(i, j)` pairs. Returns true iff there is an assignment of
/// all left supply to admissible right nodes within their capacities.
pub fn saturating_b_matching(left: &[u64], right: &[u64], edges: &[(usize, usize)]) -> bool {
    saturating_b_matching_flows(left, right, edges).is_some()
}

/// Like [`saturating_b_matching`], but returns the witness: how much of
/// each admissible `(i, j)` pair the matching uses (aligned with `edges`).
/// `None` when no saturating matching exists.
pub fn saturating_b_matching_flows(
    left: &[u64],
    right: &[u64],
    edges: &[(usize, usize)],
) -> Option<Vec<u64>> {
    let total: u64 = left.iter().sum();
    if total == 0 {
        return Some(vec![0; edges.len()]);
    }
    if total > right.iter().sum::<u64>() {
        return None;
    }
    let n_left = left.len();
    let n_right = right.len();
    // nodes: 0 = source, 1..=n_left = left, n_left+1..=n_left+n_right = right,
    // last = sink.
    let sink = n_left + n_right + 1;
    let mut net = FlowNetwork::new(sink + 1);
    for (i, &c) in left.iter().enumerate() {
        if c > 0 {
            net.add_edge(0, 1 + i, c);
        }
    }
    for (j, &c) in right.iter().enumerate() {
        if c > 0 {
            net.add_edge(1 + n_left + j, sink, c);
        }
    }
    let mut edge_ids = Vec::with_capacity(edges.len());
    for &(i, j) in edges {
        edge_ids.push(net.add_edge(1 + i, 1 + n_left + j, u64::MAX / 4));
    }
    if net.max_flow(0, sink) != total {
        return None;
    }
    Some(edge_ids.into_iter().map(|id| net.flow_on(id)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 2);
        assert_eq!(net.max_flow(0, 3), 4);
    }

    #[test]
    fn classic_augmenting_case() {
        // Requires flow rerouting through the cross edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn b_matching_saturates_when_possible() {
        // 2 of left[0] and 1 of left[1] into right[0] (cap 2), right[1] (cap 1).
        assert!(saturating_b_matching(
            &[2, 1],
            &[2, 1],
            &[(0, 0), (0, 1), (1, 0), (1, 1)]
        ));
    }

    #[test]
    fn b_matching_fails_on_capacity() {
        // left needs 3 but the only admissible right node has cap 2.
        assert!(!saturating_b_matching(&[3], &[2, 5], &[(0, 0)]));
    }

    #[test]
    fn b_matching_fails_on_structure() {
        // Hall violation: two left nodes compete for one right unit.
        assert!(!saturating_b_matching(&[1, 1], &[1, 1], &[(0, 0), (1, 0)]));
    }

    #[test]
    fn b_matching_empty_left_is_trivially_ok() {
        assert!(saturating_b_matching(&[], &[1], &[]));
        assert!(saturating_b_matching(&[0], &[], &[]));
    }

    #[test]
    fn b_matching_large_coefficients() {
        // Coefficient magnitude must not affect feasibility cost.
        let big = 1u64 << 40;
        assert!(saturating_b_matching(&[big], &[big], &[(0, 0)]));
        assert!(!saturating_b_matching(&[big + 1], &[big], &[(0, 0)]));
    }
}
