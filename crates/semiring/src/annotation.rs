//! Provenance annotations: the variables `X` of the `N[X]` semiring.
//!
//! The paper annotates every input tuple with an element of a set `X` of
//! provenance tokens (`s1`, `s2`, ...). Annotations are interned: each is a
//! small copyable id, and the id-to-name mapping lives in a global registry
//! so that polynomials display exactly as in the paper.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned provenance annotation (an element of the variable set `X`).
///
/// Annotations are cheap to copy and compare; their human-readable name is
/// held by the global registry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Annotation(u32);

struct Registry {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::new()))
}

impl Annotation {
    /// Interns `name` and returns its annotation. Repeated calls with the
    /// same name return the same annotation.
    pub fn new(name: &str) -> Self {
        let mut reg = registry().lock().expect("annotation registry poisoned");
        if let Some(&id) = reg.by_name.get(name) {
            return Annotation(id);
        }
        let id = u32::try_from(reg.names.len()).expect("annotation registry overflow");
        reg.names.push(name.to_owned());
        reg.by_name.insert(name.to_owned(), id);
        Annotation(id)
    }

    /// Creates a fresh annotation with a unique generated name (`@k`).
    ///
    /// Used to abstractly tag generated databases: every call yields an
    /// annotation distinct from every previously created one.
    pub fn fresh() -> Self {
        let mut reg = registry().lock().expect("annotation registry poisoned");
        let id = u32::try_from(reg.names.len()).expect("annotation registry overflow");
        let name = format!("@{id}");
        reg.names.push(name.clone());
        reg.by_name.insert(name, id);
        Annotation(id)
    }

    /// The interned name of this annotation.
    pub fn name(&self) -> String {
        let reg = registry().lock().expect("annotation registry poisoned");
        reg.names[self.0 as usize].clone()
    }

    /// The raw interned id. Stable within a process, useful as an index.
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Debug for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Annotation({})", self.name())
    }
}

impl From<&str> for Annotation {
    fn from(name: &str) -> Self {
        Annotation::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Annotation::new("s1");
        let b = Annotation::new("s1");
        assert_eq!(a, b);
        assert_eq!(a.name(), "s1");
    }

    #[test]
    fn distinct_names_are_distinct() {
        let a = Annotation::new("x_left");
        let b = Annotation::new("x_right");
        assert_ne!(a, b);
    }

    #[test]
    fn fresh_annotations_are_unique() {
        let a = Annotation::fresh();
        let b = Annotation::fresh();
        assert_ne!(a, b);
        assert_ne!(a.name(), b.name());
    }

    #[test]
    fn display_uses_name() {
        let a = Annotation::new("s42");
        assert_eq!(a.to_string(), "s42");
    }

    #[test]
    fn from_str_interns() {
        let a: Annotation = "token".into();
        assert_eq!(a, Annotation::new("token"));
    }
}
