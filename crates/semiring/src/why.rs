//! Why-provenance (Buneman, Khanna & Tan, ICDT 2001), as characterized in
//! paper §7: "a set of sets", i.e. a polynomial with no exponents or
//! coefficients. Provided as a baseline to compare compactness and
//! informativeness against the core provenance.

use std::collections::BTreeSet;
use std::fmt;

use crate::annotation::Annotation;
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;

/// A why-provenance expression: a set of witnesses, each a set of
/// annotations.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct WhyProvenance {
    witnesses: BTreeSet<BTreeSet<Annotation>>,
}

impl WhyProvenance {
    /// The empty why-provenance (no derivations).
    pub fn empty() -> Self {
        WhyProvenance::default()
    }

    /// Extracts why-provenance from an `N[X]` polynomial: each monomial
    /// occurrence contributes its support set; duplicates collapse.
    pub fn from_polynomial(p: &Polynomial) -> Self {
        WhyProvenance {
            witnesses: p.monomials().map(Monomial::support).collect(),
        }
    }

    /// The witnesses.
    pub fn witnesses(&self) -> &BTreeSet<BTreeSet<Annotation>> {
        &self.witnesses
    }

    /// Number of witnesses.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Whether there are no witnesses.
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// The *minimal witness basis*: witnesses not strictly containing
    /// another witness. (This is why-provenance's analogue of the core; the
    /// paper notes core provenance is strictly more informative because it
    /// also carries core coefficients.)
    pub fn minimal_witness_basis(&self) -> WhyProvenance {
        let minimal = self
            .witnesses
            .iter()
            .filter(|w| {
                !self
                    .witnesses
                    .iter()
                    .any(|other| other.len() < w.len() && other.is_subset(w))
            })
            .cloned()
            .collect();
        WhyProvenance { witnesses: minimal }
    }

    /// Total size: sum of witness cardinalities.
    pub fn size(&self) -> usize {
        self.witnesses.iter().map(BTreeSet::len).sum()
    }
}

impl fmt::Display for WhyProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, w) in self.witnesses.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str("{")?;
            for (j, a) in w.iter().enumerate() {
                if j > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{a}")?;
            }
            f.write_str("}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(text: &str) -> Polynomial {
        Polynomial::parse(text)
    }

    #[test]
    fn collapses_exponents_and_coefficients() {
        // x·y² + 2z → {{x,y},{z}}
        let why = WhyProvenance::from_polynomial(&p("x·y·y + 2·z"));
        assert_eq!(why.len(), 2);
        assert_eq!(why.to_string(), "{{x,y}, {z}}");
    }

    #[test]
    fn distinct_monomials_same_support_collapse() {
        let why = WhyProvenance::from_polynomial(&p("x·x·y + x·y·y"));
        assert_eq!(why.len(), 1);
    }

    #[test]
    fn minimal_witness_basis_drops_supersets() {
        let why = WhyProvenance::from_polynomial(&p("s1 + s1·s2·s3 + s2·s4"));
        let basis = why.minimal_witness_basis();
        assert_eq!(basis.len(), 2);
        assert_eq!(basis.to_string(), "{{s1}, {s2,s4}}");
    }

    #[test]
    fn empty_from_zero() {
        assert!(WhyProvenance::from_polynomial(&Polynomial::zero_poly()).is_empty());
    }

    #[test]
    fn size_measures_tuples_referenced() {
        let why = WhyProvenance::from_polynomial(&p("x·y + z"));
        assert_eq!(why.size(), 3);
    }
}
