//! The commutative-semiring abstraction of Green, Karvounarakis & Tannen
//! ("Provenance semirings", PODS 2007), which the paper builds on.
//!
//! A semiring `(K, +, ·, 0, 1)` has a commutative monoid `(K, +, 0)`, a
//! commutative monoid `(K, ·, 1)` (we restrict to commutative semirings, as
//! the provenance semiring `N[X]` is), distributivity, and `0` annihilating
//! `·`. Queries evaluated over `K`-relations combine annotations with `+`
//! for alternative derivations and `·` for joint use.

use std::fmt::Debug;

/// A commutative semiring `(K, +, ·, 0, 1)`.
pub trait CommutativeSemiring: Clone + PartialEq + Debug {
    /// The additive identity (annihilates multiplication).
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Semiring addition (combines alternative derivations).
    fn add(&self, other: &Self) -> Self;
    /// Semiring multiplication (combines joint derivations).
    fn mul(&self, other: &Self) -> Self;

    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// The canonical image of `n ∈ N` in this semiring: `1 + 1 + ... + 1`
    /// (`n` times). This is the unique semiring homomorphism `N → K`
    /// restricted to naturals; it is what coefficients of `N[X]` map to
    /// under polynomial evaluation.
    fn from_natural(n: u64) -> Self {
        // Double-and-add so that huge coefficients stay cheap.
        let mut result = Self::zero();
        let mut base = Self::one();
        let mut k = n;
        while k > 0 {
            if k & 1 == 1 {
                result = result.add(&base);
            }
            base = base.add(&base);
            k >>= 1;
        }
        result
    }

    /// Sums an iterator of elements.
    fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::zero(), |acc, x| acc.add(&x))
    }

    /// Multiplies an iterator of elements.
    fn product<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::one(), |acc, x| acc.mul(&x))
    }
}

/// Marker trait: semirings whose addition is idempotent (`a + a = a`).
///
/// On idempotent semirings, coefficient information of `N[X]` is lost under
/// evaluation; this is the formal reason Why-provenance and boolean
/// provenance are coarser than `N[X]` (paper §7).
pub trait IdempotentSemiring: CommutativeSemiring {}

#[cfg(test)]
pub(crate) mod laws {
    //! Reusable semiring-law assertions for concrete instances' tests.
    use super::CommutativeSemiring;

    pub fn check_semiring_laws<K: CommutativeSemiring>(elems: &[K]) {
        let zero = K::zero();
        let one = K::one();
        for a in elems {
            assert_eq!(a.add(&zero), *a, "additive identity");
            assert_eq!(a.mul(&one), *a, "multiplicative identity");
            assert_eq!(a.mul(&zero), zero, "zero annihilates");
            for b in elems {
                assert_eq!(a.add(b), b.add(a), "commutative +");
                assert_eq!(a.mul(b), b.mul(a), "commutative ·");
                for c in elems {
                    assert_eq!(a.add(b).add(c), a.add(&b.add(c)), "associative +");
                    assert_eq!(a.mul(b).mul(c), a.mul(&b.mul(c)), "associative ·");
                    assert_eq!(a.mul(&b.add(c)), a.mul(b).add(&a.mul(c)), "distributivity");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::Natural;

    #[test]
    fn from_natural_matches_repeated_addition() {
        for n in 0..20u64 {
            let slow = (0..n).fold(Natural::zero(), |acc, _| acc.add(&Natural::one()));
            assert_eq!(Natural::from_natural(n), slow);
        }
    }

    #[test]
    fn from_natural_large() {
        assert_eq!(Natural::from_natural(1_000_000), Natural(1_000_000));
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = vec![Natural(2), Natural(3), Natural(4)];
        assert_eq!(Natural::sum(xs.clone()), Natural(9));
        assert_eq!(Natural::product(xs), Natural(24));
    }
}
