//! Provenance polynomials: elements of `N[X]`, the free commutative
//! semiring over the annotation set `X` (paper §2.3, after Green et al.).
//!
//! A polynomial is a finite formal sum of monomials with natural
//! coefficients. We store it as a coefficient map keyed by monomial, which
//! keeps the paper's "all coefficients and exponents written as 1"
//! presentation recoverable: a coefficient `c` stands for `c` monomial
//! *occurrences*, each in bijection with one assignment (paper §2.3, Note).

use std::collections::BTreeMap;
use std::fmt;

use crate::annotation::Annotation;
use crate::monomial::Monomial;
use crate::semiring::CommutativeSemiring;

/// An element of `N[X]`: a finite sum `Σ cᵢ·mᵢ` of distinct monomials with
/// positive natural coefficients. The zero polynomial is the empty sum.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    /// Coefficient per distinct monomial; invariant: no zero coefficients.
    terms: BTreeMap<Monomial, u64>,
}

impl Polynomial {
    /// The zero polynomial (no derivations).
    pub fn zero_poly() -> Self {
        Polynomial {
            terms: BTreeMap::new(),
        }
    }

    /// The polynomial consisting of a single occurrence of `m`.
    pub fn from_monomial(m: Monomial) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(m, 1);
        Polynomial { terms }
    }

    /// The polynomial `c·m`.
    pub fn term(m: Monomial, c: u64) -> Self {
        let mut terms = BTreeMap::new();
        if c > 0 {
            terms.insert(m, c);
        }
        Polynomial { terms }
    }

    /// The polynomial that is a single annotation variable.
    pub fn var(a: Annotation) -> Self {
        Polynomial::from_monomial(Monomial::var(a))
    }

    /// Parses a `+`-separated sum of monomials with optional integer
    /// coefficients, e.g. `"s1·s2 + 2·s3"` or `"s1*s1 + s2"`.
    ///
    /// A leading integer factor in a term is taken as its coefficient.
    pub fn parse(text: &str) -> Self {
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed == "0" {
            return Polynomial::zero_poly();
        }
        let mut poly = Polynomial::zero_poly();
        for term in trimmed.split('+') {
            let term = term.trim();
            let mut coeff: u64 = 1;
            let mut names: Vec<&str> = Vec::new();
            for factor in term.split(['·', '*']) {
                let factor = factor.trim();
                if factor.is_empty() {
                    continue;
                }
                if let Ok(n) = factor.parse::<u64>() {
                    // `1` alone is the unit monomial; as a factor it is a
                    // coefficient either way since m·1 = m.
                    coeff = coeff.checked_mul(n).expect("coefficient overflow");
                } else {
                    names.push(factor);
                }
            }
            let m = Monomial::from_annotations(names.into_iter().map(Annotation::new));
            poly.add_occurrences(m, coeff);
        }
        poly
    }

    /// Adds `count` occurrences of monomial `m`.
    pub fn add_occurrences(&mut self, m: Monomial, count: u64) {
        if count == 0 {
            return;
        }
        *self.terms.entry(m).or_insert(0) += count;
    }

    /// Adds a single occurrence of monomial `m` (one assignment's worth).
    pub fn add_monomial(&mut self, m: Monomial) {
        self.add_occurrences(m, 1);
    }

    /// Adds one occurrence of the monomial whose **sorted** factor slice is
    /// `factors`, allocating a fresh [`Monomial`] only when the term is not
    /// yet present. This is the in-place accumulation path of batched
    /// evaluation: the caller keeps one reused factor buffer (a
    /// [`crate::MonomialBuilder`]) and no `Monomial`/`Polynomial`
    /// temporaries are built per derivation.
    pub fn add_occurrence(&mut self, factors: &[Annotation]) {
        debug_assert!(
            factors.windows(2).all(|w| w[0] <= w[1]),
            "factors must be sorted ascending"
        );
        match self.terms.get_mut(factors) {
            Some(c) => *c += 1,
            None => {
                self.terms
                    .insert(Monomial::from_sorted(factors.to_vec()), 1);
            }
        }
    }

    /// Adds `other` into `self` in place (⊕ without allocating a third
    /// polynomial), cloning each of `other`'s monomials once.
    pub fn add_assign(&mut self, other: &Polynomial) {
        for (m, c) in other.iter() {
            self.add_occurrences(m.clone(), c);
        }
    }

    /// Adds `other` into `self` in place, consuming it — no monomial is
    /// cloned. This is the hot merge path of parallel evaluation, where
    /// per-thread partial results are ⊕-combined.
    pub fn absorb(&mut self, other: Polynomial) {
        if self.terms.is_empty() {
            self.terms = other.terms;
            return;
        }
        for (m, c) in other.terms {
            if c > 0 {
                *self.terms.entry(m).or_insert(0) += c;
            }
        }
    }

    /// Drops every term whose monomial mentions `a`, returning the number
    /// of distinct monomials removed.
    ///
    /// Over an abstractly-tagged database this is exactly *deletion
    /// propagation*: a monomial's factors are the annotations of the
    /// tuples its assignment used, and `a` tags exactly one tuple, so the
    /// dropped terms are precisely the derivations that used the deleted
    /// tuple — `Q(D) ↦ Q(D ∖ {tₐ})` without re-evaluation.
    pub fn drop_mentioning(&mut self, a: Annotation) -> u64 {
        let before = self.terms.len();
        // Factors are sorted, so membership is a binary search.
        self.terms
            .retain(|m, _| m.factors().binary_search(&a).is_err());
        (before - self.terms.len()) as u64
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero_poly(&self) -> bool {
        self.terms.is_empty()
    }

    /// The number of *distinct* monomials.
    pub fn num_distinct_monomials(&self) -> usize {
        self.terms.len()
    }

    /// The total number of monomial occurrences (= sum of coefficients
    /// = number of assignments yielding the annotated tuple).
    pub fn num_occurrences(&self) -> u64 {
        self.terms.values().sum()
    }

    /// The size of the polynomial: total factor occurrences across all
    /// monomial occurrences. This is the "size of provenance" measure the
    /// paper's compactness argument refers to.
    pub fn size(&self) -> u64 {
        self.terms.iter().map(|(m, &c)| c * m.degree() as u64).sum()
    }

    /// The coefficient of monomial `m` (0 if absent).
    pub fn coefficient(&self, m: &Monomial) -> u64 {
        self.terms.get(m).copied().unwrap_or(0)
    }

    /// Iterates `(monomial, coefficient)` pairs in monomial order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, u64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// The distinct monomials, in order.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial> {
        self.terms.keys()
    }

    /// The set of annotations occurring anywhere in the polynomial.
    pub fn annotations(&self) -> std::collections::BTreeSet<Annotation> {
        self.terms
            .keys()
            .flat_map(|m| m.factors().iter().copied())
            .collect()
    }

    /// The maximum monomial degree (0 for the zero polynomial).
    pub fn max_degree(&self) -> usize {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Evaluates the polynomial in `K` under `valuation : X → K`; this is
    /// the unique semiring homomorphism `N[X] → K` extending `valuation`
    /// (the universal property of the free commutative semiring, which is
    /// what makes `N[X]` the "most general" provenance of Green et al.).
    pub fn eval<K: CommutativeSemiring>(&self, valuation: &mut impl FnMut(Annotation) -> K) -> K {
        K::sum(self.terms.iter().map(|(m, &c)| {
            let mv = m.eval(valuation);
            K::from_natural(c).mul(&mv)
        }))
    }

    /// Substitutes polynomials for annotations (composition in `N[X]`);
    /// models provenance of queries over views (the §6 "result of some
    /// previous computation" scenario).
    pub fn substitute(&self, subst: &mut impl FnMut(Annotation) -> Polynomial) -> Polynomial {
        self.eval(subst)
    }
}

impl CommutativeSemiring for Polynomial {
    fn zero() -> Self {
        Polynomial::zero_poly()
    }

    fn one() -> Self {
        Polynomial::from_monomial(Monomial::unit())
    }

    fn add(&self, other: &Self) -> Self {
        let mut result = self.clone();
        for (m, &c) in &other.terms {
            result.add_occurrences(m.clone(), c);
        }
        result
    }

    fn mul(&self, other: &Self) -> Self {
        let mut result = Polynomial::zero_poly();
        for (m1, &c1) in &self.terms {
            for (m2, &c2) in &other.terms {
                result.add_occurrences(m1.mul(m2), c1 * c2);
            }
        }
        result
    }

    fn from_natural(n: u64) -> Self {
        Polynomial::term(Monomial::unit(), n)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            if m.is_unit() {
                write!(f, "{c}")?;
            } else {
                if *c != 1 {
                    write!(f, "{c}·")?;
                }
                write!(f, "{m}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromIterator<Monomial> for Polynomial {
    fn from_iter<I: IntoIterator<Item = Monomial>>(iter: I) -> Self {
        let mut poly = Polynomial::zero_poly();
        for m in iter {
            poly.add_monomial(m);
        }
        poly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{Boolean, Natural};

    fn p(text: &str) -> Polynomial {
        Polynomial::parse(text)
    }

    #[test]
    fn parse_collects_coefficients() {
        // Paper §1: x·y·y + z + z = x·y² + 2z.
        let poly = p("x·y·y + z + z");
        assert_eq!(poly.coefficient(&Monomial::parse("x·y·y")), 1);
        assert_eq!(poly.coefficient(&Monomial::parse("z")), 2);
        assert_eq!(poly.num_occurrences(), 3);
        assert_eq!(poly.num_distinct_monomials(), 2);
    }

    #[test]
    fn parse_explicit_coefficient() {
        assert_eq!(p("2·z + x"), p("z + z + x"));
    }

    #[test]
    fn display_round_trip() {
        let poly = p("s1·s1 + 2·s2 + s3·s4");
        assert_eq!(Polynomial::parse(&poly.to_string()), poly);
    }

    #[test]
    fn zero_and_one() {
        assert_eq!(p("0"), Polynomial::zero_poly());
        assert!(Polynomial::zero_poly().is_zero_poly());
        assert_eq!(Polynomial::one().to_string(), "1");
        assert_eq!(p("1").num_occurrences(), 1);
        assert!(p("1").monomials().next().unwrap().is_unit());
    }

    #[test]
    fn drop_mentioning_removes_exactly_the_terms_using_the_annotation() {
        let mut poly = p("s1·s1 + s1·s2 + 2·s2·s3 + s3");
        assert_eq!(poly.drop_mentioning(Annotation::new("s1")), 2);
        assert_eq!(poly, p("2·s2·s3 + s3"));
        // Annotations not present drop nothing.
        assert_eq!(poly.drop_mentioning(Annotation::new("s9")), 0);
        assert_eq!(poly.drop_mentioning(Annotation::new("s3")), 2);
        assert!(poly.is_zero_poly());
    }

    #[test]
    fn semiring_laws_on_samples() {
        crate::semiring::laws::check_semiring_laws(&[
            Polynomial::zero_poly(),
            Polynomial::one(),
            p("x + y"),
            p("x·x"),
            p("2·z"),
        ]);
    }

    #[test]
    fn multiplication_distributes_assignments() {
        // (x + y)(x + z) = x² + xz + xy + yz
        let prod = p("x + y").mul(&p("x + z"));
        assert_eq!(prod, p("x·x + x·z + x·y + y·z"));
    }

    #[test]
    fn eval_into_naturals_counts_derivations() {
        // x·y² + 2z with x=y=z=1 gives 3 derivations.
        let poly = p("x·y·y + 2·z");
        let n = poly.eval(&mut |_| Natural(1));
        assert_eq!(n, Natural(3));
    }

    #[test]
    fn eval_into_boolean_is_satisfiability() {
        let poly = p("x·y + z");
        let z = Annotation::new("z");
        // only z present
        let b = poly.eval(&mut |a| Boolean(a == z));
        assert_eq!(b, Boolean(true));
        // nothing present
        let b = poly.eval(&mut |_| Boolean(false));
        assert_eq!(b, Boolean(false));
    }

    #[test]
    fn eval_is_a_homomorphism() {
        // Universal property spot-check: eval(p+q) = eval(p)+eval(q), etc.
        let pp = p("x·y + z");
        let qq = p("x + 2·w");
        let mut val = |a: Annotation| Natural(u64::from(a.id() % 5) + 1);
        let lhs = pp.add(&qq).eval(&mut val);
        let rhs = pp.eval(&mut val).add(&qq.eval(&mut val));
        assert_eq!(lhs, rhs);
        let lhs = pp.mul(&qq).eval(&mut val);
        let rhs = pp.eval(&mut val).mul(&qq.eval(&mut val));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn substitution_composes() {
        // Provenance through views: replace z by (u + v).
        let poly = p("x·z + z");
        let z = Annotation::new("z");
        let result = poly.substitute(&mut |a| {
            if a == z {
                p("u + v")
            } else {
                Polynomial::var(a)
            }
        });
        assert_eq!(result, p("x·u + x·v + u + v"));
    }

    #[test]
    fn size_counts_factor_occurrences() {
        let poly = p("s1·s2·s2 + 2·s3");
        assert_eq!(poly.size(), 3 + 2);
        assert_eq!(poly.max_degree(), 3);
    }

    #[test]
    fn annotations_collects_all() {
        let poly = p("a1·b1 + c1");
        assert_eq!(poly.annotations().len(), 3);
    }

    #[test]
    fn from_iterator_of_monomials() {
        let poly: Polynomial = vec![Monomial::parse("x"), Monomial::parse("x")]
            .into_iter()
            .collect();
        assert_eq!(poly, p("2·x"));
    }

    #[test]
    fn add_occurrence_matches_add_monomial() {
        use crate::monomial::MonomialBuilder;
        let a = Annotation::new("occ_a");
        let b = Annotation::new("occ_b");
        let mut via_monomial = Polynomial::zero_poly();
        let mut via_buffer = Polynomial::zero_poly();
        let mut builder = MonomialBuilder::new();
        for _ in 0..3 {
            via_monomial.add_monomial(Monomial::from_annotations([b, a, a]));
            builder.clear();
            builder.push(b);
            builder.push(a);
            builder.push(a);
            via_buffer.add_occurrence(builder.as_sorted());
        }
        // The unit monomial (empty factor slice) accumulates too.
        via_monomial.add_monomial(Monomial::unit());
        via_buffer.add_occurrence(&[]);
        assert_eq!(via_monomial, via_buffer);
        assert_eq!(
            via_buffer.coefficient(&Monomial::parse("occ_a·occ_a·occ_b")),
            3
        );
        assert_eq!(via_buffer.coefficient(&Monomial::unit()), 1);
        assert_eq!(builder.to_monomial(), Monomial::parse("occ_a·occ_a·occ_b"));
    }

    #[test]
    fn add_assign_and_absorb_match_add() {
        let lhs = p("s1·s2 + 2·s3");
        let rhs = p("s3 + s4");
        let expected = lhs.add(&rhs);
        let mut via_assign = lhs.clone();
        via_assign.add_assign(&rhs);
        assert_eq!(via_assign, expected);
        let mut via_absorb = lhs.clone();
        via_absorb.absorb(rhs.clone());
        assert_eq!(via_absorb, expected);
        // Absorbing into zero takes the other polynomial wholesale.
        let mut zero = Polynomial::zero_poly();
        zero.absorb(rhs.clone());
        assert_eq!(zero, rhs);
    }
}
