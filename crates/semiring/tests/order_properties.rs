//! Property tests for the terseness order (paper Def 2.15): preorder laws
//! and compatibility with the semiring operations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prov_semiring::order::{compare, poly_leq, PolyOrder};
use prov_semiring::{Annotation, CommutativeSemiring, Monomial, Polynomial};

fn poly(seed: u64, monomials: usize, degree: usize, vars: usize) -> Polynomial {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Polynomial::zero_poly();
    for _ in 0..monomials {
        let d = rng.random_range(1..=degree.max(1));
        let m = Monomial::from_annotations(
            (0..d).map(|_| Annotation::new(&format!("op{}", rng.random_range(0..vars.max(1))))),
        );
        p.add_monomial(m);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn reflexivity(seed in 0u64..1000) {
        let p = poly(seed, 4, 4, 5);
        prop_assert!(poly_leq(&p, &p));
        prop_assert_eq!(compare(&p, &p), PolyOrder::Equivalent);
    }

    #[test]
    fn zero_is_least(seed in 0u64..1000) {
        let p = poly(seed, 3, 3, 4);
        prop_assert!(poly_leq(&Polynomial::zero_poly(), &p));
        if !p.is_zero_poly() {
            prop_assert!(!poly_leq(&p, &Polynomial::zero_poly()));
        }
    }

    #[test]
    fn addition_is_monotone(sa in 0u64..300, sb in 0u64..300, sc in 0u64..300) {
        // p ≤ p + r, and p ≤ q implies p + r ≤ q + r.
        let p = poly(sa, 3, 3, 4);
        let q = poly(sb, 3, 3, 4);
        let r = poly(sc, 2, 2, 4);
        prop_assert!(poly_leq(&p, &p.add(&r)) || r.is_zero_poly());
        if poly_leq(&p, &q) {
            prop_assert!(poly_leq(&p.add(&r), &q.add(&r)));
        }
    }

    #[test]
    fn multiplication_is_monotone(sa in 0u64..300, sb in 0u64..300, sc in 0u64..300) {
        // p ≤ q implies p·r ≤ q·r.
        let p = poly(sa, 2, 2, 3);
        let q = poly(sb, 2, 2, 3);
        let r = poly(sc, 2, 2, 3);
        if poly_leq(&p, &q) {
            prop_assert!(poly_leq(&p.mul(&r), &q.mul(&r)));
        }
    }

    #[test]
    fn padding_a_monomial_grows(seed in 0u64..500) {
        // Multiplying one monomial by an extra factor produces a strictly
        // larger polynomial (when the rest stays fixed).
        let p = poly(seed, 3, 3, 4);
        if p.is_zero_poly() { return Ok(()); }
        let pad = Monomial::parse("op_pad_unique");
        let mut grown = Polynomial::zero_poly();
        for (i, (m, c)) in p.iter().enumerate() {
            if i == 0 {
                grown.add_occurrences(m.mul(&pad), c);
            } else {
                grown.add_occurrences(m.clone(), c);
            }
        }
        prop_assert!(poly_leq(&p, &grown));
    }

    #[test]
    fn comparison_is_antisymmetric_on_verdicts(sa in 0u64..200, sb in 0u64..200) {
        let p = poly(sa, 3, 3, 4);
        let q = poly(sb, 3, 3, 4);
        let pq = compare(&p, &q);
        let qp = compare(&q, &p);
        let expected = match pq {
            PolyOrder::Equivalent => PolyOrder::Equivalent,
            PolyOrder::Less => PolyOrder::Greater,
            PolyOrder::Greater => PolyOrder::Less,
            PolyOrder::Incomparable => PolyOrder::Incomparable,
        };
        prop_assert_eq!(qp, expected);
    }

    #[test]
    fn monomial_order_agrees_with_polynomial_order(sa in 0u64..300, sb in 0u64..300) {
        // Singleton polynomials compare exactly as their monomials.
        let ma = poly(sa, 1, 4, 4);
        let mb = poly(sb, 1, 4, 4);
        let (m1, _) = ma.iter().next().unwrap();
        let (m2, _) = mb.iter().next().unwrap();
        prop_assert_eq!(poly_leq(&ma, &mb), m1.leq(m2));
    }
}
