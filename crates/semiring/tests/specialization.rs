//! The universal property of `N[X]` as executable properties: evaluation
//! under any valuation is a semiring homomorphism, and the coarser
//! provenance models factor through it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prov_semiring::trio::TrioLineage;
use prov_semiring::why::WhyProvenance;
use prov_semiring::{
    Annotation, Boolean, Clearance, CommutativeSemiring, Monomial, Natural, Polynomial, Tropical,
};

fn poly(seed: u64, monomials: usize, degree: usize, vars: usize) -> Polynomial {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Polynomial::zero_poly();
    for _ in 0..monomials {
        let d = rng.random_range(1..=degree.max(1));
        let m = Monomial::from_annotations(
            (0..d).map(|_| Annotation::new(&format!("sp{}", rng.random_range(0..vars.max(1))))),
        );
        p.add_monomial(m);
    }
    p
}

fn check_homomorphism<K: CommutativeSemiring>(
    p: &Polynomial,
    q: &Polynomial,
    val: &mut impl FnMut(Annotation) -> K,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(p.add(q).eval(val), p.eval(val).add(&q.eval(val)));
    prop_assert_eq!(p.mul(q).eval(val), p.eval(val).mul(&q.eval(val)));
    prop_assert_eq!(Polynomial::zero_poly().eval(val), K::zero());
    prop_assert_eq!(Polynomial::one().eval(val), K::one());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn boolean_specialization_is_a_homomorphism(sa in 0u64..200, sb in 0u64..200) {
        let p = poly(sa, 3, 3, 4);
        let q = poly(sb, 3, 3, 4);
        check_homomorphism(&p, &q, &mut |a: Annotation| Boolean(a.id().is_multiple_of(2)))?;
    }

    #[test]
    fn natural_specialization_is_a_homomorphism(sa in 0u64..200, sb in 0u64..200) {
        let p = poly(sa, 3, 3, 4);
        let q = poly(sb, 3, 3, 4);
        check_homomorphism(&p, &q, &mut |a: Annotation| Natural(u64::from(a.id() % 4)))?;
    }

    #[test]
    fn tropical_specialization_is_a_homomorphism(sa in 0u64..200, sb in 0u64..200) {
        let p = poly(sa, 3, 3, 4);
        let q = poly(sb, 3, 3, 4);
        check_homomorphism(&p, &q, &mut |a: Annotation| {
            if a.id().is_multiple_of(5) {
                Tropical::infinity()
            } else {
                Tropical::cost(u64::from(a.id() % 7))
            }
        })?;
    }

    #[test]
    fn clearance_specialization_is_a_homomorphism(sa in 0u64..200, sb in 0u64..200) {
        let p = poly(sa, 3, 3, 4);
        let q = poly(sb, 3, 3, 4);
        let levels = [
            Clearance::Public,
            Clearance::Confidential,
            Clearance::Secret,
            Clearance::TopSecret,
            Clearance::NeverAllowed,
        ];
        check_homomorphism(&p, &q, &mut |a: Annotation| levels[(a.id() % 5) as usize])?;
    }

    #[test]
    fn idempotent_semirings_cannot_see_exponents(seed in 0u64..300) {
        // Trio's "drop exponents" is invisible to idempotent targets.
        let p = poly(seed, 4, 4, 4);
        let trio = TrioLineage::from_polynomial(&p);
        let mut val = |a: Annotation| Boolean(!a.id().is_multiple_of(3));
        prop_assert_eq!(p.eval(&mut val), trio.as_polynomial().eval(&mut val));
    }

    #[test]
    fn why_provenance_matches_boolean_satisfiability(seed in 0u64..300, mask in 0u32..64) {
        // A witness survives a deletion mask iff all its members do; the
        // polynomial is satisfied iff some witness survives.
        let p = poly(seed, 4, 3, 5);
        let why = WhyProvenance::from_polynomial(&p);
        let alive = |a: Annotation| (mask >> (a.id() % 32)) & 1 == 1;
        let by_poly = p.eval(&mut |a| Boolean(alive(a)));
        let by_why = why
            .witnesses()
            .iter()
            .any(|w| w.iter().all(|&a| alive(a)));
        prop_assert_eq!(by_poly.0, by_why);
    }
}
