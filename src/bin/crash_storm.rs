//! Fault-injection storm for the durability subsystem: a real `provmin
//! serve --data-dir` process is fed a seeded mutation script from the
//! `mutate` workload spec, `kill -9`'d at a random point (every fourth
//! round instead aborts *mid-fsync* via the WAL writer's test failpoint,
//! leaving a torn frame on disk), restarted, and byte-diffed against an
//! uncrashed in-process reference.
//!
//! The contract checked per round:
//!
//! 1. **Acknowledged ⇒ durable**: with `--fsync always`, the recovered
//!    `/eval` must be byte-identical to the reference evaluated over the
//!    acknowledged prefix of the script (an in-doubt final request — sent
//!    but never answered — may legitimately land on either side).
//! 2. **Recovery converges**: re-applying the script from the first
//!    unacknowledged step onward must reach the exact no-crash final
//!    state (inserts are idempotent, removes of absent tuples are no-ops,
//!    so in-doubt steps cannot fork the state).
//! 3. **Torn tails are dropped, loudly**: failpoint rounds must report
//!    `wal_dropped_bytes > 0` on the restarted server's `/stats`.
//! 4. **A graceful stop stays clean**: the restarted server drains on
//!    `/shutdown` with exit 0 and `provmin recover --check` then reads
//!    the directory back without loss.
//!
//! ```text
//! crash_storm <provmin-binary> [--rounds N] [--seed N] [--base-port P] [--keep]
//! ```
//!
//! Exit 0 when every round holds, 1 on the first violation (the round's
//! data directory is kept for inspection). Used by `ci/server_smoke.sh`.

use std::collections::BTreeMap;
use std::io::Read;
use std::path::Path;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use provmin::engine::EvalSession;
use provmin::semiring::Polynomial;
use provmin::server::client;
use provmin::storage::textio::{checked_insert, format_database};
use provmin::storage::{Database, RelName};
use provmin::workload::{MutationStep, Sampler, Scenario};

/// Deterministic split-mix generator — the storm must replay from
/// `--seed` alone.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct StormOptions {
    provmin: String,
    rounds: u64,
    seed: u64,
    base_port: u16,
    keep: bool,
}

fn parse_args() -> Result<StormOptions, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut rounds = 24u64;
    let mut seed = 0xc0ffee_u64;
    let mut base_port = 7410u16;
    let mut keep = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--rounds" => {
                rounds = value("--rounds")?
                    .parse()
                    .map_err(|_| "--rounds must be an integer".to_owned())?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_owned())?;
            }
            "--base-port" => {
                base_port = value("--base-port")?
                    .parse()
                    .map_err(|_| "--base-port must be a port number".to_owned())?;
            }
            "--keep" => keep = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [provmin] = positional.as_slice() else {
        return Err(
            "usage: crash_storm <provmin-binary> [--rounds N] [--seed N] [--base-port P] [--keep]"
                .to_owned(),
        );
    };
    Ok(StormOptions {
        provmin: provmin.clone(),
        rounds,
        seed,
        base_port,
        keep,
    })
}

/// Spawns `provmin serve` on `port` over `dir` and waits until `/stats`
/// answers. `failpoint` is the `PROVMIN_WAL_FAILPOINT` value, if any.
fn spawn_server(
    provmin: &str,
    dir: &Path,
    port: u16,
    snapshot_every: u64,
    delta_capacity: u64,
    failpoint: Option<&str>,
) -> Result<(Child, String), String> {
    let addr = format!("127.0.0.1:{port}");
    let mut cmd = Command::new(provmin);
    cmd.args([
        "serve",
        "--addr",
        &addr,
        "--data-dir",
        dir.to_str().expect("utf8 temp path"),
        "--fsync",
        "always",
        "--snapshot-every",
        &snapshot_every.to_string(),
        "--delta-capacity",
        &delta_capacity.to_string(),
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    match failpoint {
        Some(spec) => cmd.env(provmin::storage::wal::FAILPOINT_ENV, spec),
        None => cmd.env_remove(provmin::storage::wal::FAILPOINT_ENV),
    };
    let child = cmd.spawn().map_err(|e| format!("spawn {provmin}: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client::get(&addr, "/stats") {
            Ok((200, _)) => return Ok((child, addr)),
            _ if Instant::now() > deadline => {
                return Err(format!("server on {addr} did not come up"));
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// The `/mutate` wire line for one script step.
fn step_line(step: &MutationStep) -> String {
    match step {
        MutationStep::Insert(tuple, annotation) => format!("R{tuple} : {annotation}"),
        MutationStep::Remove(tuple) => format!("R{tuple}"),
    }
}

/// The `/mutate` JSON body for one script step.
fn step_body(step: &MutationStep) -> String {
    let field = match step {
        MutationStep::Insert(..) => "insert",
        MutationStep::Remove(..) => "remove",
    };
    format!("{{\"{field}\": [\"{}\"]}}", step_line(step))
}

/// Applies the first `n` script steps to `db` with the exact semantics of
/// the server's `/mutate` (idempotent inserts, no-op removes).
fn apply_steps(db: &mut Database, steps: &[MutationStep], n: usize) {
    let rel = RelName::new("R");
    for step in &steps[..n] {
        match step {
            MutationStep::Insert(tuple, annotation) => {
                checked_insert(db, rel, tuple.clone(), Some(*annotation))
                    .expect("workload scripts are valid by construction");
            }
            MutationStep::Remove(tuple) => {
                db.remove(rel, tuple);
            }
        }
    }
}

/// Evaluates the scenario query over `db` and renders it exactly as the
/// server's text-mode `/eval` does.
fn reference_eval(scenario: &Scenario, db: &Database) -> String {
    let result = EvalSession::new().eval_ucq(&scenario.query, db);
    if result.is_empty() {
        return "(empty result)\n".to_owned();
    }
    let lines: Vec<String> = result
        .iter()
        .map(|(tuple, p)| format!("{tuple}  [{p}]"))
        .collect();
    lines.join("\n") + "\n"
}

/// Re-parses a text-mode `/eval` body into `tuple → polynomial` in THIS
/// process's intern space. Row order and in-line monomial order follow
/// each process's `Value`/annotation intern ids (assigned at first
/// sight), so equal results from two processes may render permuted;
/// after canonicalization, equality is exact — every line byte-identical
/// up to that permutation.
fn canonical_result(text: &str) -> Result<BTreeMap<String, Polynomial>, String> {
    let mut rows = BTreeMap::new();
    if text.trim() == "(empty result)" {
        return Ok(rows);
    }
    for line in text.lines() {
        let parts = line
            .split_once("  [")
            .and_then(|(tuple, rest)| Some((tuple, rest.strip_suffix(']')?)));
        let Some((tuple, poly)) = parts else {
            return Err(format!("unparseable /eval line {line:?}"));
        };
        rows.insert(tuple.to_owned(), Polynomial::parse(poly));
    }
    Ok(rows)
}

/// The `/eval` JSON body for the scenario query (adjuncts re-joined in
/// the parseable `;` spelling).
fn query_body(scenario: &Scenario) -> String {
    let text: Vec<String> = scenario
        .query
        .adjuncts()
        .iter()
        .map(|q| q.to_string())
        .collect();
    format!("{{\"query\": \"{}\"}}", text.join(" ; "))
}

/// What happened to the mutation script before the crash.
struct CrashOutcome {
    /// Steps that received a 200 — these MUST survive.
    acked: usize,
    /// Whether step `acked` was sent but never answered — it may
    /// legitimately have reached disk or not.
    in_doubt: bool,
}

fn kill_hard(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// One storm round. Returns an error message on the first violated
/// invariant.
fn run_round(options: &StormOptions, round: u64, root: &Path) -> Result<(), String> {
    let mut rng = SplitMix64(options.seed ^ (round.wrapping_mul(0x9e3779b97f4a7c15)));
    let sampler = Sampler::named("mutate")?;
    let scenario = sampler.scenario(options.seed, round);
    let steps = &scenario.mutations;
    let dir = root.join(format!("round{round}"));
    let snapshot_every = [0u64, 3, 256][rng.below(3) as usize];
    let delta_capacity = [2u64, 8, 64][rng.below(3) as usize];
    let torn_round = round % 4 == 3;
    let failpoint = if torn_round {
        // Frames are only written for effective (non-no-op) steps, so
        // aim low to make the abort likely to fire mid-script.
        Some(format!("torn:{}", 1 + rng.below(steps.len() as u64 / 2)))
    } else {
        None
    };
    let port = options.base_port + (round as u16) * 2;

    // -- Phase 1: load the base database, mutate, crash. --
    let (mut child, addr) = spawn_server(
        &options.provmin,
        &dir,
        port,
        snapshot_every,
        delta_capacity,
        failpoint.as_deref(),
    )?;
    let base_text = format_database(&scenario.database);
    match client::post_text(&addr, "/load", &base_text) {
        Ok((200, _)) => {}
        Ok((status, body)) => {
            kill_hard(&mut child);
            return Err(format!("/load failed: {status} {body}"));
        }
        Err(e) => {
            kill_hard(&mut child);
            return Err(format!("/load failed: {e}"));
        }
    }
    let kill_at = if torn_round {
        steps.len() // the failpoint aborts the server for us
    } else {
        rng.below(steps.len() as u64 + 1) as usize
    };
    let mut outcome = CrashOutcome {
        acked: 0,
        in_doubt: false,
    };
    for (i, step) in steps.iter().enumerate() {
        if i == kill_at && !torn_round {
            // kill -9 between an acknowledged request and the next one;
            // delivery races with the requests below, so later acks (and
            // one in-doubt request) are still possible and still binding.
            let _ = child.kill();
        }
        match client::post_json(&addr, "/mutate", &step_body(step)) {
            Ok((200, _)) => outcome.acked = i + 1,
            Ok((status, body)) => {
                kill_hard(&mut child);
                return Err(format!("step {i} rejected: {status} {body}"));
            }
            Err(_) => {
                outcome.in_doubt = true;
                break;
            }
        }
    }
    kill_hard(&mut child);

    // -- Phase 2: restart, check the recovered state byte-for-byte. --
    let (mut child, addr) = spawn_server(
        &options.provmin,
        &dir,
        port + 1,
        snapshot_every,
        delta_capacity,
        None,
    )?;
    let mut acked_db = scenario.database.clone();
    apply_steps(&mut acked_db, steps, outcome.acked);
    let acked_eval = reference_eval(&scenario, &acked_db);
    let in_doubt_eval = if outcome.in_doubt && outcome.acked < steps.len() {
        let mut db = acked_db.clone();
        apply_steps(&mut db, &steps[outcome.acked..], 1);
        Some(reference_eval(&scenario, &db))
    } else {
        None
    };
    let recovered = match client::post_json_accept_text(&addr, "/eval", &query_body(&scenario)) {
        Ok((200, body)) => body,
        Ok((status, body)) => {
            kill_hard(&mut child);
            return Err(format!("recovered /eval failed: {status} {body}"));
        }
        Err(e) => {
            kill_hard(&mut child);
            return Err(format!("recovered /eval failed: {e}"));
        }
    };
    let recovered_rows = canonical_result(&recovered)?;
    let matches_acked = recovered_rows == canonical_result(&acked_eval)?;
    let matches_in_doubt = match &in_doubt_eval {
        Some(text) => recovered_rows == canonical_result(text)?,
        None => false,
    };
    if !matches_acked && !matches_in_doubt {
        kill_hard(&mut child);
        return Err(format!(
            "acknowledged mutations lost: after {} acked step(s){}, recovered /eval:\n{recovered}\nexpected:\n{acked_eval}",
            outcome.acked,
            if outcome.in_doubt { " (+1 in doubt)" } else { "" },
        ));
    }
    if torn_round && outcome.in_doubt {
        // The aborted append left a half-written frame; recovery must
        // have dropped it and said so.
        let stats = match client::get(&addr, "/stats") {
            Ok((200, body)) => body,
            other => {
                kill_hard(&mut child);
                return Err(format!("restarted /stats failed: {other:?}"));
            }
        };
        if !stats.contains("\"wal_dropped_bytes\":") || stats.contains("\"wal_dropped_bytes\":0") {
            kill_hard(&mut child);
            return Err(format!("torn round reported no dropped wal bytes: {stats}"));
        }
    }

    // -- Phase 3: converge — finish the script, compare the final state. --
    let resume_from = outcome.acked;
    for (i, step) in steps.iter().enumerate().skip(resume_from) {
        match client::post_json(&addr, "/mutate", &step_body(step)) {
            Ok((200, _)) => {}
            other => {
                kill_hard(&mut child);
                return Err(format!("post-recovery step {i} failed: {other:?}"));
            }
        }
    }
    let mut final_db = scenario.database.clone();
    apply_steps(&mut final_db, steps, steps.len());
    let final_eval = reference_eval(&scenario, &final_db);
    let served = match client::post_json_accept_text(&addr, "/eval", &query_body(&scenario)) {
        Ok((200, body)) => body,
        other => {
            kill_hard(&mut child);
            return Err(format!("final /eval failed: {other:?}"));
        }
    };
    if canonical_result(&served)? != canonical_result(&final_eval)? {
        kill_hard(&mut child);
        return Err(format!(
            "post-recovery state diverged:\n{served}\nexpected:\n{final_eval}"
        ));
    }

    // -- Phase 4: graceful drain + offline check must both stay clean. --
    match client::post_json(&addr, "/shutdown", "{}") {
        Ok((200, _)) => {}
        other => {
            kill_hard(&mut child);
            return Err(format!("/shutdown failed: {other:?}"));
        }
    }
    let status = child
        .wait()
        .map_err(|e| format!("waiting for drained server: {e}"))?;
    if !status.success() {
        return Err(format!("drained server exited with {status}"));
    }
    let check = Command::new(&options.provmin)
        .args([
            "recover",
            "--data-dir",
            dir.to_str().expect("utf8"),
            "--check",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .map_err(|e| format!("recover --check: {e}"))?;
    if !check.status.success() {
        let mut err = String::new();
        let _ = (&check.stderr[..]).read_to_string(&mut err);
        return Err(format!("recover --check failed: {err}"));
    }
    if !options.keep {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let root = std::env::temp_dir().join(format!("provmin_crash_storm_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&root) {
        eprintln!("error: creating {}: {e}", root.display());
        return ExitCode::FAILURE;
    }
    let mut torn = 0u64;
    for round in 0..options.rounds {
        match run_round(&options, round, &root) {
            Ok(()) => {
                if round % 4 == 3 {
                    torn += 1;
                }
                eprintln!(
                    "crash_storm: round {round}/{} ok{}",
                    options.rounds,
                    if round % 4 == 3 {
                        " (torn-write failpoint)"
                    } else {
                        ""
                    }
                );
            }
            Err(message) => {
                eprintln!(
                    "crash_storm: FAILED at round {round} (seed {}): {message}",
                    options.seed
                );
                eprintln!(
                    "crash_storm: data dir kept at {}",
                    root.join(format!("round{round}")).display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if !options.keep {
        let _ = std::fs::remove_dir_all(&root);
    }
    println!(
        "crash_storm: OK — {} round(s) (incl. {torn} torn-write) recovered byte-identically, seed {}",
        options.rounds, options.seed
    );
    ExitCode::SUCCESS
}
