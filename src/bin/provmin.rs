//! `provmin` — command-line front end: evaluate queries with provenance,
//! minimize them, and compute core provenance.
//!
//! ```text
//! provmin eval     <db-file> '<query>'        annotated evaluation
//! provmin minimize '<query>'                  p-minimal equivalent (MinProv)
//! provmin core     <db-file> '<query>'        core provenance per tuple
//! provmin trace    '<query>'                  MinProv step-by-step
//! provmin datalog  <db-file> <program> <pred> evaluate + core a pipeline
//! ```
//!
//! Queries use the rule syntax (unions: join rules with ';'):
//! `ans(x) :- R(x,y), R(y,x), x != y ; ans(x) :- R(x,x)`.
//! Databases use the text format: one `R(a, b) : s1` per line.

use std::process::ExitCode;

use provmin::datalog::{core_query, evaluate, Program};
use provmin::prelude::*;
use provmin::storage::textio::parse_database;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  provmin eval <db-file> '<query>'\n  provmin minimize '<query>'\n  \
         provmin core <db-file> '<query>'\n  provmin trace '<query>'\n  \
         provmin datalog <db-file> <program-file> <predicate>"
    );
    ExitCode::from(2)
}

fn parse_query(text: &str) -> Result<UnionQuery, String> {
    let rules = text.replace(';', "\n");
    parse_ucq(&rules).map_err(|e| e.to_string())
}

fn load_db(path: &str) -> Result<Database, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_database(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, db_path, query] if cmd == "eval" || cmd == "core" => run_with_db(cmd, db_path, query),
        [cmd, query] if cmd == "minimize" => run_minimize(query),
        [cmd, query] if cmd == "trace" => run_trace(query),
        [cmd, db_path, program_path, pred] if cmd == "datalog" => {
            run_datalog(db_path, program_path, pred)
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run_with_db(cmd: &str, db_path: &str, query: &str) -> Result<(), String> {
    let db = load_db(db_path)?;
    let q = parse_query(query)?;
    let result = eval_ucq(&q, &db);
    if result.is_empty() {
        println!("(empty result)");
        return Ok(());
    }
    for (tuple, p) in result.iter() {
        match cmd {
            "eval" => println!("{tuple}  [{p}]"),
            _core => {
                let consts = q.constants();
                let core = exact_core(p, &db, tuple, &consts)
                    .map_err(|e| format!("core of {tuple}: {e}"))?;
                println!("{tuple}  [{core}]   (from [{p}])");
            }
        }
    }
    Ok(())
}

fn run_minimize(query: &str) -> Result<(), String> {
    let q = parse_query(query)?;
    let minimal = minprov(&q);
    println!("{minimal}");
    Ok(())
}

fn run_trace(query: &str) -> Result<(), String> {
    let q = parse_query(query)?;
    let trace = minprov_trace(&q);
    println!("input ({} adjuncts):\n{}\n", trace.input.len(), trace.input);
    println!(
        "step I — canonical rewriting ({} adjuncts):\n{}\n",
        trace.canonical.len(),
        trace.canonical
    );
    println!(
        "step II — per-adjunct minimization ({} adjuncts):\n{}\n",
        trace.minimized.len(),
        trace.minimized
    );
    println!(
        "step III — containment pruning ({} adjuncts):\n{}",
        trace.output.len(),
        trace.output
    );
    Ok(())
}

fn run_datalog(db_path: &str, program_path: &str, pred: &str) -> Result<(), String> {
    let db = load_db(db_path)?;
    let text = std::fs::read_to_string(program_path).map_err(|e| format!("{program_path}: {e}"))?;
    let program = Program::parse(&text).map_err(|e| e.to_string())?;
    let predicate = RelName::new(pred);
    if program.is_edb(predicate) {
        return Err(format!("{pred} is not defined by the program"));
    }
    let result = evaluate(&program, &db);
    println!("{pred} with provenance over source annotations:");
    for (tuple, p) in result.tuples(predicate) {
        println!("  {tuple}  [{p}]");
    }
    match core_query(&program, predicate) {
        Some(core) => {
            println!(
                "\np-minimal unfolded definition ({} adjuncts):\n{core}",
                core.len()
            );
        }
        None => println!("\n{pred} is unsatisfiable"),
    }
    Ok(())
}
