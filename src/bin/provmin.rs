//! `provmin` — command-line front end: evaluate queries with provenance,
//! minimize them, and compute core provenance.
//!
//! ```text
//! provmin eval     <db-file> '<query>'        annotated evaluation
//! provmin minimize '<query>'                  p-minimal equivalent (MinProv)
//! provmin core     <db-file> '<query>'        core provenance per tuple
//! provmin trace    '<query>'                  MinProv step-by-step
//! provmin datalog  <db-file> <program> <pred> evaluate + core a pipeline
//! ```
//!
//! `eval` and `core` accept evaluation-strategy flags anywhere on the
//! command line:
//!
//! * `--threads N` — sharded parallel evaluation on `N` worker threads
//!   (results are identical to sequential; ⊕ is commutative).
//! * `--planner written|syntactic|cost` — join planner (default `cost`).
//! * `--batch` — columnar batched evaluation (identical results; blocks
//!   of partial assignments instead of tuple-at-a-time recursion).
//! * `--cache-stats` — print index-cache hit/miss counters to stderr
//!   (all disjuncts of a union share one index build via the cache).
//!
//! `minimize` accepts engine flags (see `docs/MINIMIZE.md`):
//!
//! * `--strategy minprov|auto|standard|dedup` — minimization strategy
//!   (default `minprov`).
//! * `--budget-steps N` / `--budget-ms N` — step / wall-clock budget.
//!   A budget-exhausted run prints the best sound partial result plus its
//!   resume cursor and exits with code 3 (distinct from errors).
//! * `--no-memo` — disable canonical-form memoization (diagnostics).
//!
//! Queries use the rule syntax (unions: join rules with ';'):
//! `ans(x) :- R(x,y), R(y,x), x != y ; ans(x) :- R(x,x)`.
//! Databases use the text format: one `R(a, b) : s1` per line.

use std::process::ExitCode;

use provmin::core::minimize::{minimize_with, MinimizeOptions, MinimizeOutcome, Strategy};
use provmin::datalog::{core_query, evaluate, Program};
use provmin::engine::{eval_ucq_cached, EvalOptions, IndexCache, PlannerKind};
use provmin::prelude::*;
use provmin::storage::textio::parse_database;

/// Exit code for a budget-exhausted (partial but sound) minimization.
const EXIT_BUDGET_EXHAUSTED: u8 = 3;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  provmin eval [--threads N] [--planner written|syntactic|cost] [--batch] [--cache-stats] <db-file> '<query>'\n  \
         provmin minimize [--strategy minprov|auto|standard|dedup] [--budget-steps N] [--budget-ms N] [--no-memo] '<query>'\n  \
         provmin core [--threads N] [--planner KIND] [--batch] [--cache-stats] <db-file> '<query>'\n  \
         provmin trace '<query>'\n  \
         provmin datalog <db-file> <program-file> <predicate>"
    );
    ExitCode::from(2)
}

/// Extracts `--threads`/`--planner`/`--batch`/`--cache-stats` flags from
/// the argument list, returning the remaining positional arguments, the
/// resulting options, whether cache stats were requested, and whether any
/// flag was present (only `eval`/`core` accept them).
fn parse_eval_flags(args: &[String]) -> Result<(Vec<String>, EvalOptions, bool, bool), String> {
    let mut options = EvalOptions::default();
    let mut positional = Vec::new();
    let mut cache_stats = false;
    let mut flags_used = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                flags_used = true;
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--threads must be a positive integer".to_owned());
                }
                options = options.with_parallelism(n);
            }
            "--planner" => {
                flags_used = true;
                let kind = match it.next().ok_or("--planner needs a value")?.as_str() {
                    "written" => PlannerKind::WrittenOrder,
                    "syntactic" => PlannerKind::Syntactic,
                    "cost" => PlannerKind::CostBased,
                    other => return Err(format!("unknown planner {other}")),
                };
                options = options.with_planner(kind);
            }
            "--batch" => {
                flags_used = true;
                options = options.with_batch(true);
            }
            "--cache-stats" => {
                flags_used = true;
                cache_stats = true;
            }
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, options, cache_stats, flags_used))
}

/// Extracts `minimize`'s engine flags, returning the remaining positional
/// arguments, the resulting options, and whether any flag was present.
fn parse_minimize_flags(args: &[String]) -> Result<(Vec<String>, MinimizeOptions, bool), String> {
    let mut options = MinimizeOptions::default();
    let mut positional = Vec::new();
    let mut flags_used = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strategy" => {
                flags_used = true;
                options.strategy = match it.next().ok_or("--strategy needs a value")?.as_str() {
                    "minprov" => Strategy::MinProv,
                    "auto" => Strategy::Auto,
                    "standard" => Strategy::Standard,
                    "dedup" => Strategy::CompleteDedup,
                    other => return Err(format!("unknown strategy {other}")),
                };
            }
            "--budget-steps" => {
                flags_used = true;
                let n: u64 = it
                    .next()
                    .ok_or("--budget-steps needs a value")?
                    .parse()
                    .map_err(|_| "--budget-steps must be an integer".to_owned())?;
                options.budget.max_steps = Some(n);
            }
            "--budget-ms" => {
                flags_used = true;
                let ms: u64 = it
                    .next()
                    .ok_or("--budget-ms needs a value")?
                    .parse()
                    .map_err(|_| "--budget-ms must be an integer".to_owned())?;
                options.budget.max_duration = Some(std::time::Duration::from_millis(ms));
            }
            "--no-memo" => {
                flags_used = true;
                options.memo = false;
            }
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, options, flags_used))
}

fn parse_query(text: &str) -> Result<UnionQuery, String> {
    let rules = text.replace(';', "\n");
    parse_ucq(&rules).map_err(|e| e.to_string())
}

fn load_db(path: &str) -> Result<Database, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_database(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, options, cache_stats, eval_flags_used) = match parse_eval_flags(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            return usage();
        }
    };
    if eval_flags_used && !matches!(args.first().map(String::as_str), Some("eval" | "core")) {
        eprintln!("error: --threads/--planner/--batch/--cache-stats only apply to eval and core");
        return usage();
    }
    let (args, minimize_options, minimize_flags_used) = match parse_minimize_flags(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            return usage();
        }
    };
    if minimize_flags_used && args.first().map(String::as_str) != Some("minimize") {
        eprintln!("error: --strategy/--budget-*/--no-memo only apply to minimize");
        return usage();
    }
    let result = match args.as_slice() {
        [cmd, db_path, query] if cmd == "eval" || cmd == "core" => {
            run_with_db(cmd, db_path, query, options, cache_stats).map(|()| true)
        }
        [cmd, query] if cmd == "minimize" => run_minimize(query, minimize_options),
        [cmd, query] if cmd == "trace" => run_trace(query).map(|()| true),
        [cmd, db_path, program_path, pred] if cmd == "datalog" => {
            run_datalog(db_path, program_path, pred).map(|()| true)
        }
        _ => return usage(),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(EXIT_BUDGET_EXHAUSTED),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run_with_db(
    cmd: &str,
    db_path: &str,
    query: &str,
    options: EvalOptions,
    cache_stats: bool,
) -> Result<(), String> {
    let db = load_db(db_path)?;
    let q = parse_query(query)?;
    // One cache per invocation: every disjunct of the union shares a
    // single index/columnar build. (`exact_core` below works on the
    // polynomial directly and takes no index.)
    let cache = IndexCache::new();
    let result = eval_ucq_cached(&q, &db, options, &cache);
    if cache_stats {
        let stats = cache.stats();
        eprintln!(
            "index cache: {} build(s), {} hit(s)",
            stats.misses, stats.hits
        );
    }
    if result.is_empty() {
        println!("(empty result)");
        return Ok(());
    }
    for (tuple, p) in result.iter() {
        match cmd {
            "eval" => println!("{tuple}  [{p}]"),
            _core => {
                let consts = q.constants();
                let core = exact_core(p, &db, tuple, &consts)
                    .map_err(|e| format!("core of {tuple}: {e}"))?;
                println!("{tuple}  [{core}]   (from [{p}])");
            }
        }
    }
    Ok(())
}

/// Runs the minimization engine; returns `Ok(false)` when the budget was
/// exhausted (the caller maps that to exit code 3).
fn run_minimize(query: &str, options: MinimizeOptions) -> Result<bool, String> {
    let q = parse_query(query)?;
    match minimize_with(&q, options).map_err(|e| e.to_string())? {
        MinimizeOutcome::Complete(minimal) => {
            println!("{minimal}");
            Ok(true)
        }
        MinimizeOutcome::Partial(partial) => {
            println!("{}", partial.best);
            eprintln!(
                "budget exhausted after {} steps (sound partial result above); \
                 resume cursor: adjunct {}, completion {}",
                partial.steps_used, partial.cursor.adjunct, partial.cursor.completion
            );
            Ok(false)
        }
    }
}

fn run_trace(query: &str) -> Result<(), String> {
    let q = parse_query(query)?;
    let trace = minprov_trace(&q);
    println!("input ({} adjuncts):\n{}\n", trace.input.len(), trace.input);
    println!(
        "step I — canonical rewriting ({} adjuncts):\n{}\n",
        trace.canonical.len(),
        trace.canonical
    );
    println!(
        "step II — per-adjunct minimization ({} adjuncts):\n{}\n",
        trace.minimized.len(),
        trace.minimized
    );
    println!(
        "step III — containment pruning ({} adjuncts):\n{}",
        trace.output.len(),
        trace.output
    );
    Ok(())
}

fn run_datalog(db_path: &str, program_path: &str, pred: &str) -> Result<(), String> {
    let db = load_db(db_path)?;
    let text = std::fs::read_to_string(program_path).map_err(|e| format!("{program_path}: {e}"))?;
    let program = Program::parse(&text).map_err(|e| e.to_string())?;
    let predicate = RelName::new(pred);
    if program.is_edb(predicate) {
        return Err(format!("{pred} is not defined by the program"));
    }
    let result = evaluate(&program, &db);
    println!("{pred} with provenance over source annotations:");
    for (tuple, p) in result.tuples(predicate) {
        println!("  {tuple}  [{p}]");
    }
    match core_query(&program, predicate) {
        Some(core) => {
            println!(
                "\np-minimal unfolded definition ({} adjuncts):\n{core}",
                core.len()
            );
        }
        None => println!("\n{pred} is unsatisfiable"),
    }
    Ok(())
}
