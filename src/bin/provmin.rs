//! `provmin` — command-line front end: evaluate queries with provenance,
//! minimize them, and compute core provenance.
//!
//! ```text
//! provmin eval     <db-file> '<query>'        annotated evaluation
//! provmin minimize '<query>'                  p-minimal equivalent (MinProv)
//! provmin core     <db-file> '<query>'        core provenance per tuple
//! provmin trace    '<query>'                  MinProv step-by-step
//! provmin datalog  <db-file> <program> <pred> evaluate + core a pipeline
//! provmin serve    [--addr H:P] [--db FILE]   long-running HTTP query service
//! provmin recover  --data-dir DIR [--check]   offline recovery check/compact
//! provmin fuzz     [--spec NAME] [--seed N]   differential fuzzing over DSL
//!                  [--cases N | --case K]     workloads (docs/FUZZING.md)
//! ```
//!
//! `eval` and `core` accept evaluation-strategy flags anywhere on the
//! command line:
//!
//! * `--threads N` — sharded parallel evaluation on `N` worker threads
//!   (results are identical to sequential; ⊕ is commutative).
//! * `--planner written|syntactic|cost` — join planner (default `cost`).
//! * `--batch` / `--tuple` — columnar batched evaluation (the default
//!   since the soak of the equivalence suite) or the tuple-at-a-time
//!   escape hatch. Identical results either way.
//! * `--chunk-rows N` — frontier chunk size of the batched pipeline
//!   (default 65536, `0` = unchunked): bounds peak evaluation memory at
//!   O(chunk × one step's fan-out) with bit-identical results (see the
//!   memory-bounded-evaluation section of `docs/PERF.md`).
//! * `--cache-stats` — print the session's cache counters to stderr, in
//!   the same schema as the server's `/stats` cache object: view-cache
//!   `hits`/`misses` plus the incremental-maintenance counters
//!   `delta_applies`/`full_rebuilds`/`monomials_dropped` and the
//!   `peak_frontier_rows` high-water mark (all disjuncts of a union
//!   share one index build via the session).
//!
//! `minimize` accepts engine flags (see `docs/MINIMIZE.md`):
//!
//! * `--strategy minprov|auto|standard|dedup` — minimization strategy
//!   (default `minprov`).
//! * `--budget-steps N` / `--budget-ms N` — step / wall-clock budget.
//!   A budget-exhausted run prints the best sound partial result plus its
//!   resume cursor and exits with code 3 (distinct from errors).
//! * `--no-memo` — disable canonical-form memoization (diagnostics).
//!
//! `serve` starts the long-running HTTP/1.1 service over the shared
//! generation-keyed index cache (see `docs/SERVER.md`):
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7171`).
//! * `--workers N` — request worker threads (default 4).
//! * `--db FILE` — database to load at startup (else start empty and
//!   `POST /load`).
//! * `--data-dir DIR` — persist to a write-ahead log + snapshots and
//!   recover from them on boot (see `docs/DURABILITY.md`).
//! * `--fsync always|interval` — WAL fsync policy with `--data-dir`
//!   (default `always`: a 200 means the mutation survives a crash).
//! * `--snapshot-every N` — rotate a compacted snapshot after N WAL
//!   events (default 256; 0 = only at shutdown/`/load`).
//! * `--delta-capacity N` — delta-log window of the served database
//!   (default 64).
//!
//! It runs until SIGINT (Ctrl-C), SIGTERM, or `POST /shutdown`, then
//! drains in-flight requests, rotates a final snapshot when persistent,
//! and exits cleanly.
//!
//! `recover` opens a `--data-dir` offline, prints the recovery report
//! (snapshot generation/tuples, WAL events replayed, bytes dropped from
//! a torn tail), and — unless `--check` — compacts the directory into a
//! fresh snapshot with an empty WAL.
//!
//! `fuzz` differentially checks DSL-generated scenarios (every eval
//! mode × planner × thread count bit-identical, semiring specialization
//! consistent, every eligible minimize strategy equivalent with sound
//! budgeted partials). Exit codes: 0 = all cases agree, 1 = divergence
//! (the reproducing `(spec, seed, case)` triple is printed), 2 = flag
//! errors. `--list-specs` prints the built-in spec names; `--case K`
//! replays exactly one case. See `docs/FUZZING.md`.
//!
//! Queries use the rule syntax (unions: join rules with ';'):
//! `ans(x) :- R(x,y), R(y,x), x != y ; ans(x) :- R(x,x)`.
//! Databases use the text format: one `R(a, b) : s1` per line.

use std::process::ExitCode;
use std::sync::atomic::{AtomicI32, Ordering};

use provmin::core::minimize::{minimize_with, MinimizeOptions, MinimizeOutcome, Strategy};
use provmin::datalog::{core_query, evaluate, Program};
use provmin::engine::{EvalOptions, EvalSession, PlannerKind};
use provmin::prelude::*;
use provmin::storage::textio::parse_database;

/// Exit code for a budget-exhausted (partial but sound) minimization.
const EXIT_BUDGET_EXHAUSTED: u8 = 3;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  provmin eval [--threads N] [--planner written|syntactic|cost] [--batch|--tuple] [--chunk-rows N] [--cache-stats] <db-file> '<query>'\n  \
         provmin minimize [--strategy minprov|auto|standard|dedup] [--budget-steps N] [--budget-ms N] [--no-memo] '<query>'\n  \
         provmin core [--threads N] [--planner KIND] [--batch|--tuple] [--chunk-rows N] [--cache-stats] <db-file> '<query>'\n  \
         provmin trace '<query>'\n  \
         provmin datalog <db-file> <program-file> <predicate>\n  \
         provmin serve [--addr HOST:PORT] [--workers N] [--db FILE] [--max-conns N] [--keepalive-timeout SECS]\n  \
         \u{20}             [--data-dir DIR] [--fsync always|interval] [--snapshot-every N] [--delta-capacity N]\n  \
         provmin recover --data-dir DIR [--check]\n  \
         provmin fuzz [--spec NAME] [--seed N] [--cases N | --case K] [--chunk-rows N] [--list-specs]"
    );
    ExitCode::from(2)
}

/// Extracts `--threads`/`--planner`/`--batch`/`--chunk-rows`/`--cache-stats` flags from
/// the argument list, returning the remaining positional arguments, the
/// resulting options, whether cache stats were requested, and whether any
/// flag was present (only `eval`/`core` accept them).
fn parse_eval_flags(args: &[String]) -> Result<(Vec<String>, EvalOptions, bool, bool), String> {
    let mut options = EvalOptions::default();
    let mut positional = Vec::new();
    let mut cache_stats = false;
    let mut flags_used = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                flags_used = true;
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--threads must be a positive integer".to_owned());
                }
                options = options.with_parallelism(n);
            }
            "--planner" => {
                flags_used = true;
                let kind = match it.next().ok_or("--planner needs a value")?.as_str() {
                    "written" => PlannerKind::WrittenOrder,
                    "syntactic" => PlannerKind::Syntactic,
                    "cost" => PlannerKind::CostBased,
                    other => return Err(format!("unknown planner {other}")),
                };
                options = options.with_planner(kind);
            }
            "--batch" => {
                flags_used = true;
                options = options.with_batch(true);
            }
            "--tuple" => {
                flags_used = true;
                options = options.with_batch(false);
            }
            "--chunk-rows" => {
                flags_used = true;
                let n: usize = it
                    .next()
                    .ok_or("--chunk-rows needs a value")?
                    .parse()
                    .map_err(|_| "--chunk-rows must be an integer".to_owned())?;
                // 0 disables chunking (unbounded frontier), matching the
                // engine's `effective_chunk_rows` convention.
                options = if n == 0 {
                    options.unchunked()
                } else {
                    options.with_chunk_rows(n)
                };
            }
            "--cache-stats" => {
                flags_used = true;
                cache_stats = true;
            }
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, options, cache_stats, flags_used))
}

/// Extracts `minimize`'s engine flags, returning the remaining positional
/// arguments, the resulting options, and whether any flag was present.
fn parse_minimize_flags(args: &[String]) -> Result<(Vec<String>, MinimizeOptions, bool), String> {
    let mut options = MinimizeOptions::default();
    let mut positional = Vec::new();
    let mut flags_used = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strategy" => {
                flags_used = true;
                options.strategy = match it.next().ok_or("--strategy needs a value")?.as_str() {
                    "minprov" => Strategy::MinProv,
                    "auto" => Strategy::Auto,
                    "standard" => Strategy::Standard,
                    "dedup" => Strategy::CompleteDedup,
                    other => return Err(format!("unknown strategy {other}")),
                };
            }
            "--budget-steps" => {
                flags_used = true;
                let n: u64 = it
                    .next()
                    .ok_or("--budget-steps needs a value")?
                    .parse()
                    .map_err(|_| "--budget-steps must be an integer".to_owned())?;
                options.budget.max_steps = Some(n);
            }
            "--budget-ms" => {
                flags_used = true;
                let ms: u64 = it
                    .next()
                    .ok_or("--budget-ms needs a value")?
                    .parse()
                    .map_err(|_| "--budget-ms must be an integer".to_owned())?;
                options.budget.max_duration = Some(std::time::Duration::from_millis(ms));
            }
            "--no-memo" => {
                flags_used = true;
                options.memo = false;
            }
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, options, flags_used))
}

fn parse_query(text: &str) -> Result<UnionQuery, String> {
    let rules = text.replace(';', "\n");
    parse_ucq(&rules).map_err(|e| e.to_string())
}

fn load_db(path: &str) -> Result<Database, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_database(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `fuzz`, `serve`, and `recover` parse their own flags from the
    // arguments after the subcommand (fuzz shares `--chunk-rows` with
    // eval/core), so the global eval/minimize flag extraction must not
    // run for them — it would consume their flags first.
    let subcommand_owns_flags = matches!(
        args.first().map(String::as_str),
        Some("fuzz" | "serve" | "recover")
    );
    let (args, options, cache_stats, eval_flags_used) = if subcommand_owns_flags {
        (args, EvalOptions::default(), false, false)
    } else {
        match parse_eval_flags(&args) {
            Ok(parsed) => parsed,
            Err(message) => {
                eprintln!("error: {message}");
                return usage();
            }
        }
    };
    if eval_flags_used && !matches!(args.first().map(String::as_str), Some("eval" | "core")) {
        eprintln!("error: --threads/--planner/--batch/--cache-stats only apply to eval and core");
        return usage();
    }
    let (args, minimize_options, minimize_flags_used) = if subcommand_owns_flags {
        (args, MinimizeOptions::default(), false)
    } else {
        match parse_minimize_flags(&args) {
            Ok(parsed) => parsed,
            Err(message) => {
                eprintln!("error: {message}");
                return usage();
            }
        }
    };
    if minimize_flags_used && args.first().map(String::as_str) != Some("minimize") {
        eprintln!("error: --strategy/--budget-*/--no-memo only apply to minimize");
        return usage();
    }
    let result = match args.as_slice() {
        [cmd, rest @ ..] if cmd == "fuzz" => {
            // `fuzz` has its own exit-code contract (0 agree / 1
            // divergence / 2 flag errors), so it bypasses the shared
            // Ok/Err mapping below.
            return match parse_fuzz_flags(rest) {
                Ok(FuzzCommand::ListSpecs) => {
                    for name in provmin::workload::ScenarioSpec::names() {
                        println!("{name}");
                    }
                    ExitCode::SUCCESS
                }
                Ok(FuzzCommand::Run(fuzz_options)) => run_fuzz(&fuzz_options),
                Err(message) => {
                    eprintln!("error: {message}");
                    usage()
                }
            };
        }
        [cmd, rest @ ..] if cmd == "serve" => match parse_serve_flags(rest) {
            Ok(serve_args) => run_serve(serve_args).map(|()| true),
            Err(message) => {
                // Flag-shape problems are usage errors (exit 2), like
                // every other subcommand; runtime failures (bind, db
                // load) exit 1 from run_serve.
                eprintln!("error: {message}");
                return usage();
            }
        },
        [cmd, rest @ ..] if cmd == "recover" => match parse_recover_flags(rest) {
            Ok(recover_args) => run_recover(recover_args).map(|()| true),
            Err(message) => {
                eprintln!("error: {message}");
                return usage();
            }
        },
        [cmd, db_path, query] if cmd == "eval" || cmd == "core" => {
            run_with_db(cmd, db_path, query, options, cache_stats).map(|()| true)
        }
        [cmd, query] if cmd == "minimize" => run_minimize(query, minimize_options),
        [cmd, query] if cmd == "trace" => run_trace(query).map(|()| true),
        [cmd, db_path, program_path, pred] if cmd == "datalog" => {
            run_datalog(db_path, program_path, pred).map(|()| true)
        }
        _ => return usage(),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(EXIT_BUDGET_EXHAUSTED),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The signal number (SIGINT or SIGTERM) received by the handler, or 0;
/// polled by the `serve` wait loop. Both signals mean the same thing:
/// drain in-flight requests, rotate a final snapshot when persistent,
/// exit 0 — so `kill <pid>` from a process supervisor is as safe as
/// Ctrl-C.
static SHUTDOWN_SIGNAL: AtomicI32 = AtomicI32::new(0);

extern "C" fn on_shutdown_signal(signum: i32) {
    // Only async-signal-safe work here: record the signal and return.
    SHUTDOWN_SIGNAL.store(signum, Ordering::SeqCst);
}

/// Routes SIGINT (Ctrl-C) and SIGTERM (supervisor stop) to
/// [`SHUTDOWN_SIGNAL`] so the serve loop can drain and exit cleanly
/// instead of being killed mid-request.
#[cfg(unix)]
fn install_shutdown_handlers() {
    extern "C" {
        // libc's simplified signal registration; the handler pointer has
        // the exact C signature, so no cast is involved.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_shutdown_signal);
        signal(SIGTERM, on_shutdown_signal);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handlers() {}

/// Human-readable name for the signals [`install_shutdown_handlers`]
/// registers.
fn signal_name(signum: i32) -> &'static str {
    match signum {
        2 => "SIGINT",
        15 => "SIGTERM",
        _ => "signal",
    }
}

/// Parsed `provmin fuzz` invocation.
enum FuzzCommand {
    /// `--list-specs`: print the built-in spec names and exit 0.
    ListSpecs,
    /// A fuzzing run.
    Run(provmin::fuzz::FuzzOptions),
}

/// Extracts `fuzz`'s flags; errors (including an unknown `--spec`) are
/// usage errors (exit 2).
fn parse_fuzz_flags(args: &[String]) -> Result<FuzzCommand, String> {
    let mut options = provmin::fuzz::FuzzOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--list-specs" => return Ok(FuzzCommand::ListSpecs),
            "--spec" => {
                let name = value("--spec")?;
                if !provmin::workload::ScenarioSpec::names().contains(&name.as_str()) {
                    return Err(format!(
                        "unknown spec {name} (one of: {})",
                        provmin::workload::ScenarioSpec::names().join(", ")
                    ));
                }
                options.spec = name;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_owned())?;
            }
            "--cases" => {
                let n: u64 = value("--cases")?
                    .parse()
                    .map_err(|_| "--cases must be a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--cases must be a positive integer".to_owned());
                }
                options.cases = n;
            }
            "--case" => {
                options.start = value("--case")?
                    .parse()
                    .map_err(|_| "--case must be an integer".to_owned())?;
                options.cases = 1;
            }
            "--chunk-rows" => {
                let n: usize = value("--chunk-rows")?
                    .parse()
                    .map_err(|_| "--chunk-rows must be an integer".to_owned())?;
                options.chunk_rows = Some(n);
            }
            other => return Err(format!("unknown fuzz flag {other}")),
        }
    }
    Ok(FuzzCommand::Run(options))
}

/// `provmin fuzz`: exit 0 on agreement, 1 on divergence (with the
/// reproducing triple printed), 1 on setup failures.
fn run_fuzz(options: &provmin::fuzz::FuzzOptions) -> ExitCode {
    use provmin::fuzz::FuzzVerdict;
    match provmin::fuzz::run(options) {
        Ok(FuzzVerdict::Agreement {
            cases,
            eval_configs,
        }) => {
            println!(
                "fuzz: OK — {cases} case(s) of spec={} seed={} agree across {} eval configs, \
                 semiring specialization, and every eligible minimize strategy",
                options.spec, options.seed, eval_configs
            );
            ExitCode::SUCCESS
        }
        Ok(FuzzVerdict::Diverged(divergence)) => {
            println!("fuzz: DIVERGENCE {}", divergence.replay);
            println!("  {}", divergence.detail);
            println!(
                "replay: provmin fuzz --spec {} --seed {} --case {}",
                divergence.spec, divergence.seed, divergence.case
            );
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `provmin serve` arguments.
struct ServeArgs {
    config: provmin::server::ServeConfig,
    db_path: Option<String>,
    data_dir: Option<String>,
    durability: provmin::storage::DurabilityOptions,
}

/// Extracts `serve`'s flags; errors here are usage errors (exit 2).
fn parse_serve_flags(args: &[String]) -> Result<ServeArgs, String> {
    let mut config = provmin::server::ServeConfig::default();
    let mut db_path: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut durability = provmin::storage::DurabilityOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                let n: usize = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--workers must be a positive integer".to_owned());
                }
                config.workers = n;
            }
            "--db" => db_path = Some(value("--db")?),
            "--max-conns" => {
                let n: usize = value("--max-conns")?
                    .parse()
                    .map_err(|_| "--max-conns must be a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--max-conns must be a positive integer".to_owned());
                }
                config.max_conns = n;
            }
            "--keepalive-timeout" => {
                let secs: u64 = value("--keepalive-timeout")?
                    .parse()
                    .map_err(|_| "--keepalive-timeout must be whole seconds".to_owned())?;
                if secs == 0 {
                    return Err("--keepalive-timeout must be whole seconds".to_owned());
                }
                config.keepalive_timeout = std::time::Duration::from_secs(secs);
            }
            "--data-dir" => data_dir = Some(value("--data-dir")?),
            "--fsync" => {
                durability.fsync = provmin::storage::FsyncPolicy::parse(&value("--fsync")?)?;
            }
            "--snapshot-every" => {
                durability.snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| "--snapshot-every must be an integer".to_owned())?;
            }
            "--delta-capacity" => {
                let n: usize = value("--delta-capacity")?
                    .parse()
                    .map_err(|_| "--delta-capacity must be an integer".to_owned())?;
                config.delta_capacity = n;
                durability.delta_capacity = n;
            }
            other => return Err(format!("unknown serve flag {other}")),
        }
    }
    if data_dir.is_none()
        && args
            .iter()
            .any(|a| a == "--fsync" || a == "--snapshot-every")
    {
        return Err("--fsync/--snapshot-every need --data-dir".to_owned());
    }
    Ok(ServeArgs {
        config,
        db_path,
        data_dir,
        durability,
    })
}

/// `provmin serve`: bind, serve until SIGINT/SIGTERM or `POST /shutdown`,
/// drain (rotating a final snapshot when persistent).
fn run_serve(args: ServeArgs) -> Result<(), String> {
    let ServeArgs {
        config,
        db_path,
        data_dir,
        durability,
    } = args;
    // Open the data directory before building any other database:
    // recovery raises the process generation floor above everything
    // persisted, which must happen before new stamps are minted.
    let (mut store, recovered) = match &data_dir {
        Some(dir) => {
            let (store, db) =
                provmin::storage::DurableStore::open(std::path::Path::new(dir), durability)?;
            let r = store.last_recovery();
            eprintln!(
                "provmin serve: recovered {dir} — snapshot gen {} ({} tuple(s)), \
                 wal {} replayed / {} stale / {} byte(s) dropped",
                r.snapshot_generation,
                r.snapshot_tuples,
                r.wal_replayed,
                r.wal_skipped,
                r.wal_dropped_bytes
            );
            if let Some(why) = &r.corruption {
                eprintln!("provmin serve: recovery truncated the wal tail: {why}");
            }
            (Some(store), Some(db))
        }
        None => (None, None),
    };
    let db = match &db_path {
        Some(path) => {
            // An explicit `--db` starts a new lineage: it replaces
            // whatever the data directory held and is persisted as the
            // fresh snapshot before the first request is served.
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let mut db = Database::with_delta_capacity(config.delta_capacity);
            provmin::storage::textio::parse_database_into(&mut db, &text)
                .map_err(|e| format!("{path}: {e}"))?;
            if let Some(store) = store.as_mut() {
                store
                    .snapshot(&db)
                    .map_err(|e| format!("persisting {path}: {e}"))?;
            }
            db
        }
        None => recovered.unwrap_or_else(|| Database::with_delta_capacity(config.delta_capacity)),
    };
    let tuples = db.num_tuples();
    let handle = provmin::server::serve_durable(config.clone(), db, store)
        .map_err(|e| format!("bind {}: {e}", config.addr))?;
    install_shutdown_handlers();
    eprintln!(
        "provmin serve: listening on http://{} ({} worker(s), {} tuple(s) loaded{})",
        handle.addr(),
        config.workers,
        tuples,
        match &data_dir {
            Some(dir) => format!(", persisting to {dir}"),
            None => String::new(),
        }
    );
    loop {
        let signum = SHUTDOWN_SIGNAL.load(Ordering::SeqCst);
        if signum != 0 {
            eprintln!("provmin serve: {} — draining", signal_name(signum));
            handle.state().request_shutdown();
        }
        if handle.state().shutdown_requested() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.shutdown();
    eprintln!("provmin serve: shutdown complete");
    Ok(())
}

/// Parsed `provmin recover` arguments.
struct RecoverArgs {
    data_dir: String,
    check: bool,
}

/// Extracts `recover`'s flags; errors here are usage errors (exit 2).
fn parse_recover_flags(args: &[String]) -> Result<RecoverArgs, String> {
    let mut data_dir: Option<String> = None;
    let mut check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data-dir" => {
                data_dir = Some(it.next().cloned().ok_or("--data-dir needs a value")?);
            }
            "--check" => check = true,
            other => return Err(format!("unknown recover flag {other}")),
        }
    }
    Ok(RecoverArgs {
        data_dir: data_dir.ok_or("recover needs --data-dir")?,
        check,
    })
}

/// `provmin recover`: offline recovery of a data directory. `--check`
/// only reads and reports; the default additionally compacts the
/// directory into a fresh snapshot with an empty WAL. A torn tail is
/// reported, not fatal (exit 0) — an unreadable snapshot is fatal
/// (exit 1).
fn run_recover(args: RecoverArgs) -> Result<(), String> {
    let dir = std::path::Path::new(&args.data_dir);
    let report = if args.check {
        let (db, report) =
            provmin::storage::recover_readonly(dir, provmin::storage::DELTA_LOG_CAPACITY)?;
        println!(
            "recover --check: {} tuple(s) recoverable from {}",
            db.num_tuples(),
            args.data_dir
        );
        report
    } else {
        let (store, db) = provmin::storage::DurableStore::open(
            dir,
            provmin::storage::DurabilityOptions::default(),
        )?;
        println!(
            "recover: compacted {} into a fresh snapshot ({} tuple(s))",
            args.data_dir,
            db.num_tuples()
        );
        store.last_recovery().clone()
    };
    println!(
        "  snapshot: generation {} ({} tuple(s))",
        report.snapshot_generation, report.snapshot_tuples
    );
    println!(
        "  wal: {} replayed, {} stale, {} byte(s) dropped",
        report.wal_replayed, report.wal_skipped, report.wal_dropped_bytes
    );
    if let Some(why) = &report.corruption {
        println!("  corruption: {why}");
    }
    Ok(())
}

fn run_with_db(
    cmd: &str,
    db_path: &str,
    query: &str,
    options: EvalOptions,
    cache_stats: bool,
) -> Result<(), String> {
    let db = load_db(db_path)?;
    let q = parse_query(query)?;
    // One session per invocation: every disjunct of the union shares a
    // single index/columnar build and one materialized result.
    // (`exact_core` below works on the polynomial directly and takes no
    // index.)
    let session = EvalSession::with_options(options);
    let result = session.eval_ucq(&q, &db);
    if cache_stats {
        // Same counter schema as the server's `/stats` cache object.
        let stats = session.stats();
        eprintln!(
            "cache: hits={} misses={} delta_applies={} full_rebuilds={} monomials_dropped={} peak_frontier_rows={}",
            stats.views.hits,
            stats.views.misses,
            stats.delta_applies,
            stats.full_rebuilds,
            stats.monomials_dropped,
            stats.peak_frontier_rows
        );
    }
    if result.is_empty() {
        println!("(empty result)");
        return Ok(());
    }
    for (tuple, p) in result.iter() {
        match cmd {
            "eval" => println!("{tuple}  [{p}]"),
            _core => {
                let consts = q.constants();
                let core = exact_core(p, &db, tuple, &consts)
                    .map_err(|e| format!("core of {tuple}: {e}"))?;
                println!("{tuple}  [{core}]   (from [{p}])");
            }
        }
    }
    Ok(())
}

/// Runs the minimization engine; returns `Ok(false)` when the budget was
/// exhausted (the caller maps that to exit code 3).
fn run_minimize(query: &str, options: MinimizeOptions) -> Result<bool, String> {
    let q = parse_query(query)?;
    match minimize_with(&q, options).map_err(|e| e.to_string())? {
        MinimizeOutcome::Complete(minimal) => {
            println!("{minimal}");
            Ok(true)
        }
        MinimizeOutcome::Partial(partial) => {
            println!("{}", partial.best);
            // The cursor goes to *stdout* so callers capturing the result
            // can resume mechanically; the human-facing note stays on
            // stderr.
            println!(
                "resume-cursor: adjunct {} completion {}",
                partial.cursor.adjunct, partial.cursor.completion
            );
            eprintln!(
                "budget exhausted after {} steps (sound partial result above)",
                partial.steps_used
            );
            Ok(false)
        }
    }
}

fn run_trace(query: &str) -> Result<(), String> {
    let q = parse_query(query)?;
    let trace = minprov_trace(&q);
    println!("input ({} adjuncts):\n{}\n", trace.input.len(), trace.input);
    println!(
        "step I — canonical rewriting ({} adjuncts):\n{}\n",
        trace.canonical.len(),
        trace.canonical
    );
    println!(
        "step II — per-adjunct minimization ({} adjuncts):\n{}\n",
        trace.minimized.len(),
        trace.minimized
    );
    println!(
        "step III — containment pruning ({} adjuncts):\n{}",
        trace.output.len(),
        trace.output
    );
    Ok(())
}

fn run_datalog(db_path: &str, program_path: &str, pred: &str) -> Result<(), String> {
    let db = load_db(db_path)?;
    let text = std::fs::read_to_string(program_path).map_err(|e| format!("{program_path}: {e}"))?;
    let program = Program::parse(&text).map_err(|e| e.to_string())?;
    let predicate = RelName::new(pred);
    if program.is_edb(predicate) {
        return Err(format!("{pred} is not defined by the program"));
    }
    let result = evaluate(&program, &db);
    println!("{pred} with provenance over source annotations:");
    for (tuple, p) in result.tuples(predicate) {
        println!("  {tuple}  [{p}]");
    }
    match core_query(&program, predicate) {
        Some(core) => {
            println!(
                "\np-minimal unfolded definition ({} adjuncts):\n{core}",
                core.len()
            );
        }
        None => println!("\n{pred} is unsatisfiable"),
    }
    Ok(())
}
