//! # provmin — On Provenance Minimization
//!
//! A Rust implementation of *"On Provenance Minimization"* (Amsterdamer,
//! Deutch, Milo, Tannen, PODS 2011): computing the **core provenance** of
//! query results — the part of the `N[X]` provenance polynomial that every
//! equivalent query must produce — both by rewriting queries into
//! p-minimal form (`MinProv`) and by direct manipulation of provenance
//! polynomials.
//!
//! ## Quick start
//!
//! ```
//! use provmin::prelude::*;
//!
//! // Table 2 of the paper: an abstractly-tagged relation R.
//! let mut db = Database::new();
//! db.add("R", &["a", "a"], "s1");
//! db.add("R", &["a", "b"], "s2");
//! db.add("R", &["b", "a"], "s3");
//! db.add("R", &["b", "b"], "s4");
//!
//! // Figure 1's Qconj: ans(x) :- R(x,y), R(y,x).
//! let q = parse_cq("ans(x) :- R(x,y), R(y,x)").unwrap();
//!
//! // Evaluate with provenance (Def 2.12).
//! let result = eval_cq(&q, &db);
//! let p = result.provenance(&Tuple::of(&["a"]));
//! assert_eq!(p.to_string(), "s1·s1 + s2·s3");
//!
//! // Rewrite to the p-minimal equivalent (Theorem 4.6) ...
//! let minimal = minprov_cq(&q);
//! let core = eval_ucq(&minimal, &db).provenance(&Tuple::of(&["a"]));
//! assert_eq!(core.to_string(), "s1 + s2·s3");
//!
//! // ... or compute the core provenance directly from the polynomial
//! // (Theorem 5.1), without touching the query.
//! let direct = core_polynomial(&p);
//! assert_eq!(direct, core);
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`semiring`] | `prov-semiring` | `N[X]` polynomials, the order relation, specializations |
//! | [`query`] | `prov-query` | CQ/CQ≠/UCQ≠ ADTs, parser, homomorphisms, containment, canonical rewriting |
//! | [`storage`] | `prov-storage` | abstractly-tagged relations and databases |
//! | [`engine`] | `prov-engine` | provenance-annotated evaluation |
//! | [`core`] | `prov-core` | standard & p-minimization, MinProv, direct core computation |
//! | [`server`] | `prov-server` | the long-running `provmin serve` HTTP query service |
//! | [`workload`] | `prov-workload` | compositional workload DSL + seed-keyed scenario sampling |
//! | [`fuzz`] | (facade) | the differential harness behind `provmin fuzz` |
//! | [`paper`] | `prov-paper` | the paper's figures/tables and the `repro` harness |

#![warn(missing_docs)]

pub mod fuzz;

pub use prov_algebra as algebra;
pub use prov_core as core;
pub use prov_datalog as datalog;
pub use prov_engine as engine;
pub use prov_paper as paper;
pub use prov_query as query;
pub use prov_semiring as semiring;
pub use prov_server as server;
pub use prov_storage as storage;
pub use prov_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use prov_core::direct::exact_core;
    pub use prov_core::minimize::{
        minimize_with, Budget, MinimizeOptions, MinimizeOutcome, Minimizer, Strategy,
    };
    pub use prov_core::minprov::{minprov, minprov_cq, minprov_trace};
    pub use prov_core::order::{compare_on, leq_p_on};
    pub use prov_core::pminimal::{p_minimize_auto, p_minimize_overall};
    pub use prov_core::standard::{minimize_complete, minimize_cq, minimize_ucq};
    pub use prov_engine::{
        eval_cq, eval_cq_with, eval_in_semiring, eval_ucq, eval_ucq_with, AnnotatedResult,
        EvalOptions, PlannerKind,
    };
    pub use prov_query::containment::{contained_in, cq_equivalent, equivalent};
    pub use prov_query::{
        parse_cq, parse_ucq, Atom, ConjunctiveQuery, Diseq, Term, UnionQuery, Variable,
    };
    pub use prov_semiring::derivative::{derivative, sensitivity};
    pub use prov_semiring::direct::{core_polynomial, is_core_shape};
    pub use prov_semiring::order::{
        compare, leq_witness, poly_leq, poly_lt, OrderWitness, PolyOrder,
    };
    pub use prov_semiring::{
        Annotation, Boolean, Clearance, CommutativeSemiring, Confidence, Monomial, Natural,
        Polynomial, Tropical,
    };
    pub use prov_storage::{Database, RelName, Renaming, Tuple, Valuation, Value};
}
