//! The differential fuzzing harness behind `provmin fuzz`.
//!
//! One DSL-generated scenario (see [`prov_workload`]) is checked across
//! every axis the engine and minimizer expose; a divergence anywhere is
//! a bug in exactly the guarantees the source paper proves:
//!
//! * **Evaluation** — `{batched, tuple} × {1, 4 threads} ×
//!   {cost-based, syntactic, written-order planners}`, plus two
//!   degenerate-chunk batched configs (`--chunk-rows` overrides the
//!   whole matrix), must be bit-identical to the naive reference
//!   (Def 2.6/2.12: every strategy enumerates the same assignments;
//!   ⊕-merge order is immaterial — chunked accumulation is just another
//!   regrouping of ⊕). Each configuration runs in its own
//!   [`EvalSession`] (a shared session would serve later configs the
//!   first one's materialized result and check nothing).
//! * **Incremental maintenance** — for scenarios carrying a mutation
//!   script (the `mutate` spec), one `EvalSession` is driven across the
//!   whole insert/delete interleaving and must stay bit-identical to
//!   from-scratch naive evaluation at every observation point — the
//!   delta ⊕-join and deletion-propagation paths of `docs/CACHE.md`.
//! * **Semirings** — specializing the `N[X]` result through a valuation
//!   must agree with [`eval_in_semiring`] for the scenario's semiring
//!   (the homomorphism property the polynomials are universal for).
//! * **Minimization** — every eligible strategy's output must be
//!   equivalent to the input (containment both ways), produce the same
//!   answer set on the scenario database, and — for `MinProv` — per-tuple
//!   provenance `≤` the original (the core-provenance guarantee of
//!   Theorem 4.6). A step-budgeted run must yield a *sound* partial.
//!
//! Every failure message carries the `(spec, seed, case)` triple, which
//! reproduces the scenario exactly (`provmin fuzz --spec S --seed N
//! --case K`); see `docs/FUZZING.md` for the replay workflow.

use std::collections::BTreeMap;

use prov_core::minimize::{minimize_with, Budget, MinimizeOptions, MinimizeOutcome, Strategy};
use prov_engine::{eval_in_semiring, eval_ucq_with, EvalOptions, EvalSession, PlannerKind};
use prov_query::containment::equivalent;
use prov_query::ConjunctiveQuery;
use prov_semiring::order::poly_leq;
use prov_semiring::{Boolean, CommutativeSemiring, Confidence, Natural, Tropical};
use prov_storage::{Database, RelName, Tuple, Valuation};
use prov_workload::{MutationStep, Sampler, Scenario, SemiringTag};

/// What `provmin fuzz` runs: a spec name, the replay seed, and the case
/// range `start..start + cases`.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Built-in spec name (see [`prov_workload::ScenarioSpec::names`]).
    pub spec: String,
    /// Replay seed.
    pub seed: u64,
    /// First case index (a replay of case `K` sets `start = K`).
    pub start: u64,
    /// Number of cases.
    pub cases: u64,
    /// `Some(n)`: force chunk size `n` (0 = unchunked) onto *every* eval
    /// configuration, replacing the default matrix's two dedicated
    /// chunked configs. `None`: default matrix.
    pub chunk_rows: Option<usize>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            spec: "mixed".to_owned(),
            seed: 1,
            start: 0,
            cases: 200,
            chunk_rows: None,
        }
    }
}

/// A reproducible disagreement between two configurations.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The reproducing triple, `spec=S seed=N case=K` form.
    pub replay: String,
    /// The spec name (for reconstructing the replay command).
    pub spec: String,
    /// The seed.
    pub seed: u64,
    /// The diverging case.
    pub case: u64,
    /// Which check failed and how.
    pub detail: String,
}

/// The outcome of a fuzzing run.
#[derive(Clone, Debug)]
pub enum FuzzVerdict {
    /// Every case agreed across every configuration.
    Agreement {
        /// Cases checked.
        cases: u64,
        /// Eval configurations differenced per case (excluding the
        /// naive reference).
        eval_configs: usize,
    },
    /// A case diverged; fuzzing stopped at the first one.
    Diverged(Box<Divergence>),
}

/// The differential evaluation configurations (the naive reference runs
/// separately). The base matrix is `{batched, tuple} × {1, 4 threads} ×
/// {cost, syntactic, written}` = 12 configs, all at the default chunk
/// size; without an override, two degenerate-chunk configs (chunk 1
/// sequential, chunk 7 parallel — the sizes that maximally exercise the
/// re-chunking recursion) ride along for 14. A `chunk_override` of
/// `Some(n)` instead forces chunk size `n` (0 = unchunked) onto every
/// base config.
fn eval_configs(chunk_override: Option<usize>) -> Vec<(String, EvalOptions)> {
    let chunked = |options: EvalOptions, rows: usize| {
        if rows == 0 {
            options.unchunked()
        } else {
            options.with_chunk_rows(rows)
        }
    };
    let mut configs = Vec::new();
    for (mode_name, batch) in [("batched", true), ("tuple", false)] {
        for threads in [1usize, 4] {
            for (planner_name, planner) in [
                ("cost", PlannerKind::CostBased),
                ("syntactic", PlannerKind::Syntactic),
                ("written", PlannerKind::WrittenOrder),
            ] {
                let mut options = EvalOptions::default()
                    .with_batch(batch)
                    .with_planner(planner)
                    .with_parallelism(threads);
                let mut name = format!("{mode_name}/{planner_name}/t{threads}");
                if let Some(rows) = chunk_override {
                    options = chunked(options, rows);
                    name.push_str(&format!("/chunk{rows}"));
                }
                configs.push((name, options));
            }
        }
    }
    if chunk_override.is_none() {
        for (threads, rows) in [(1usize, 1usize), (4, 7)] {
            let options = chunked(
                EvalOptions::default()
                    .with_batch(true)
                    .with_parallelism(threads),
                rows,
            );
            configs.push((format!("batched/cost/t{threads}/chunk{rows}"), options));
        }
    }
    configs
}

/// Runs the harness. `Err` is a *setup* failure (unknown spec, grammar
/// that fails to parse) — distinct from a divergence, which is reported
/// in the verdict.
pub fn run(options: &FuzzOptions) -> Result<FuzzVerdict, String> {
    let sampler = Sampler::named(&options.spec)?;
    let configs = eval_configs(options.chunk_rows);
    let inject = injected_case();
    for case in options.start..options.start.saturating_add(options.cases) {
        let scenario = sampler.scenario(options.seed, case);
        let result = if inject == Some(case) {
            Err("injected divergence (PROVMIN_FUZZ_INJECT_CASE is set; \
                 this exercises the reporting path, not a real bug)"
                .to_owned())
        } else {
            check_scenario(&scenario, &configs)
        };
        if let Err(detail) = result {
            return Ok(FuzzVerdict::Diverged(Box::new(Divergence {
                replay: scenario.replay(),
                spec: options.spec.clone(),
                seed: options.seed,
                case,
                detail,
            })));
        }
    }
    Ok(FuzzVerdict::Agreement {
        cases: options.cases,
        eval_configs: configs.len(),
    })
}

/// Test hook: `PROVMIN_FUZZ_INJECT_CASE=K` makes case `K` report a
/// divergence, so the exit-code contract and replay printing can be
/// asserted end to end without planting a real engine bug.
fn injected_case() -> Option<u64> {
    std::env::var("PROVMIN_FUZZ_INJECT_CASE")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// All differential checks for one scenario. `Err` carries the detail.
pub fn check_scenario(
    scenario: &Scenario,
    configs: &[(String, EvalOptions)],
) -> Result<(), String> {
    let query = &scenario.query;
    let db = &scenario.database;

    // 1. Every eval configuration, bit-identical against the naive
    //    reference. One session per config: within it a union's
    //    disjuncts share an index/columnar build, while across configs
    //    every evaluation is genuinely re-run.
    let reference = eval_ucq_with(query, db, EvalOptions::naive());
    for (name, options) in configs {
        let session = EvalSession::with_options(*options);
        let result = session.eval_ucq(query, db);
        if *result != reference {
            return Err(format!(
                "eval config {name} diverged from the naive reference on {} ({} vs {} tuples, skew {})",
                query,
                result.len(),
                reference.len(),
                scenario.skew,
            ));
        }
    }

    // 2. Semiring specialization commutes with evaluation.
    check_semiring(scenario, &reference)?;

    // 3. Every eligible minimize strategy agrees.
    let diseq_free = query.adjuncts().iter().all(ConjunctiveQuery::is_cq);
    let mut strategies = vec![Strategy::MinProv, Strategy::Auto];
    if diseq_free {
        strategies.push(Strategy::Standard);
    }
    if query.is_complete() {
        strategies.push(Strategy::CompleteDedup);
    }
    for strategy in strategies {
        let outcome = minimize_with(query, MinimizeOptions::with_strategy(strategy))
            .map_err(|e| format!("strategy {strategy} refused an eligible query {query}: {e}"))?;
        let minimized = outcome.into_query();
        if !equivalent(&minimized, query) {
            return Err(format!(
                "strategy {strategy} produced a non-equivalent rewriting: {query}  ⇏  {minimized}"
            ));
        }
        let min_result = eval_ucq_with(&minimized, db, EvalOptions::naive());
        let answers: Vec<&Tuple> = reference.tuples().collect();
        let min_answers: Vec<&Tuple> = min_result.tuples().collect();
        if answers != min_answers {
            return Err(format!(
                "strategy {strategy} changed the answer set of {query}: {} vs {} tuples",
                min_answers.len(),
                answers.len(),
            ));
        }
        if strategy == Strategy::MinProv {
            // Theorem 4.6: the p-minimal rewriting realizes the *core*
            // provenance — per tuple, ≤ the original polynomial.
            for (tuple, provenance) in reference.iter() {
                let core = min_result.provenance(tuple);
                if !poly_leq(&core, provenance) {
                    return Err(format!(
                        "MinProv provenance of {tuple} is not ≤ the original for {query}: [{core}] vs [{provenance}]"
                    ));
                }
            }
        }
    }

    // 4. Budget-bounded partials are sound (equivalent to the input) at
    //    an aggressive cutoff.
    match minimize_with(query, MinimizeOptions::default().budgeted(Budget::steps(2)))
        .map_err(|e| format!("budgeted MinProv errored on {query}: {e}"))?
    {
        MinimizeOutcome::Complete(_) => {}
        MinimizeOutcome::Partial(partial) => {
            if !equivalent(&partial.best, query) {
                return Err(format!(
                    "budgeted partial is unsound for {query}: {}",
                    partial.best
                ));
            }
        }
    }

    // 5. Incremental maintenance across the scenario's mutation script
    //    (non-empty only for the `mutate` spec).
    check_mutations(scenario)
}

/// Drives one [`EvalSession`] across the scenario's insert/delete
/// interleaving, asserting the incrementally-maintained result is
/// bit-identical to from-scratch naive evaluation at every observation
/// point. Observations alternate between every-step and every-other-step
/// so some delta windows carry several events (including transients and
/// remove/re-insert pairs the netting logic must collapse).
fn check_mutations(scenario: &Scenario) -> Result<(), String> {
    if scenario.mutations.is_empty() {
        return Ok(());
    }
    let query = &scenario.query;
    let session = EvalSession::new();
    let rel = RelName::new("R");
    let mut db = scenario.database.clone();
    session.eval_ucq(query, &db);
    for (i, step) in scenario.mutations.iter().enumerate() {
        match step {
            MutationStep::Insert(tuple, annotation) => {
                session.apply_mutation(&mut db, &[], &[(rel, tuple.clone(), *annotation)]);
            }
            MutationStep::Remove(tuple) => {
                session.apply_mutation(&mut db, &[(rel, tuple.clone())], &[]);
            }
        }
        if i % 2 == 1 || i + 1 == scenario.mutations.len() {
            let incremental = session.eval_ucq(query, &db);
            let scratch = eval_ucq_with(query, &db, EvalOptions::naive());
            if *incremental != scratch {
                return Err(format!(
                    "incremental session diverged from from-scratch after mutation step {i} \
                     (of {}) on {query}: {} vs {} tuples",
                    scenario.mutations.len(),
                    incremental.len(),
                    scratch.len(),
                ));
            }
        }
    }
    // The script's bounded size keeps it inside the delta log, and step 0
    // always mutates for real — the delta path must actually have run.
    let stats = session.stats();
    if stats.delta_applies == 0 {
        return Err(format!(
            "mutation script for {query} never exercised the delta path \
             (full_rebuilds={})",
            stats.full_rebuilds
        ));
    }
    Ok(())
}

/// Checks that specializing the reference polynomials through a
/// deterministic valuation agrees with `eval_in_semiring` for the
/// scenario's semiring tag.
fn check_semiring(
    scenario: &Scenario,
    reference: &prov_engine::AnnotatedResult,
) -> Result<(), String> {
    match scenario.semiring {
        SemiringTag::Counting => check_semiring_in(scenario, reference, |h| Natural(1 + h % 3)),
        SemiringTag::Boolean => check_semiring_in(scenario, reference, |_| Boolean(true)),
        SemiringTag::Tropical => check_semiring_in(scenario, reference, |h| Tropical::cost(h % 7)),
        SemiringTag::Confidence => check_semiring_in(scenario, reference, |h| {
            Confidence::from_f64(0.25 + (h % 4) as f64 * 0.25)
        }),
    }
}

fn check_semiring_in<K, F>(
    scenario: &Scenario,
    reference: &prov_engine::AnnotatedResult,
    value_of: F,
) -> Result<(), String>
where
    K: CommutativeSemiring,
    F: Fn(u64) -> K,
{
    let valuation = scenario_valuation(&scenario.database, value_of);
    let direct = eval_in_semiring(&scenario.query, &scenario.database, &valuation);
    let specialized: BTreeMap<Tuple, K> = reference
        .iter()
        .map(|(t, p)| (t.clone(), valuation.eval(p)))
        .filter(|(_, k)| !k.is_zero())
        .collect();
    if direct != specialized {
        return Err(format!(
            "{} specialization disagrees with eval_in_semiring on {} ({} vs {} tuples)",
            scenario.semiring,
            scenario.query,
            direct.len(),
            specialized.len(),
        ));
    }
    Ok(())
}

/// A deterministic valuation over every annotation in the database,
/// keyed by a stable hash of the annotation's name.
fn scenario_valuation<K, F>(db: &Database, value_of: F) -> Valuation<K>
where
    K: CommutativeSemiring,
    F: Fn(u64) -> K,
{
    let mut valuation = Valuation::constant(K::one());
    for relation in db.relations() {
        for (_, annotation) in relation.iter() {
            valuation.set(*annotation, value_of(fnv(&annotation.name())));
        }
    }
    valuation
}

/// FNV-1a — stable across platforms and runs (unlike `DefaultHasher`).
fn fnv(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1_0000_0193);
    }
    hash
}

/// Convenience for tests: differential-checks one `(spec, seed, case)`
/// triple with the full config matrix.
pub fn check_triple(spec: &str, seed: u64, case: u64) -> Result<(), String> {
    let sampler = Sampler::named(spec)?;
    check_scenario(&sampler.scenario(seed, case), &eval_configs(None))
}

/// Re-export used by the CLI to size its summary line.
pub fn eval_config_count() -> usize {
    eval_configs(None).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_slice_of_every_spec_agrees() {
        for spec in prov_workload::ScenarioSpec::names() {
            let verdict = run(&FuzzOptions {
                spec: (*spec).to_owned(),
                seed: 7,
                start: 0,
                cases: 6,
                chunk_rows: None,
            })
            .expect("spec resolves");
            match verdict {
                FuzzVerdict::Agreement {
                    cases,
                    eval_configs,
                } => {
                    assert_eq!(cases, 6);
                    assert_eq!(eval_configs, 14);
                }
                FuzzVerdict::Diverged(d) => {
                    panic!("unexpected divergence: {} — {}", d.replay, d.detail)
                }
            }
        }
    }

    /// Satellite of the chunked-eval PR: chunk size 1 (the maximally
    /// re-chunked pipeline) must stay bit-identical to the tuple-at-a-time
    /// path on a slice of every spec. Transitivity through the naive
    /// reference already implies this inside `run`; this pins the direct
    /// comparison so a future naive-path bug can't mask a chunking one.
    #[test]
    fn chunk_rows_one_matches_tuple_path_on_every_spec() {
        for spec in prov_workload::ScenarioSpec::names() {
            let sampler = Sampler::named(spec).expect("spec resolves");
            for case in 0..4 {
                let scenario = sampler.scenario(11, case);
                let chunked = EvalSession::with_options(
                    EvalOptions::default().with_batch(true).with_chunk_rows(1),
                );
                let tuple = EvalSession::with_options(EvalOptions::default().with_batch(false));
                assert_eq!(
                    *chunked.eval_ucq(&scenario.query, &scenario.database),
                    *tuple.eval_ucq(&scenario.query, &scenario.database),
                    "chunk_rows=1 diverged from tuple path on {}",
                    scenario.replay(),
                );
            }
        }
    }

    #[test]
    fn unknown_spec_is_a_setup_error() {
        assert!(run(&FuzzOptions {
            spec: "no-such-spec".to_owned(),
            ..FuzzOptions::default()
        })
        .is_err());
    }

    #[test]
    fn check_triple_replays_one_case() {
        check_triple("mixed", 7, 3).expect("case agrees");
    }
}
