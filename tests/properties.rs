//! Property-based tests of the paper's invariants over randomly generated
//! queries, databases and polynomials.

use std::collections::BTreeSet;

use proptest::prelude::*;

use provmin::prelude::*;
use provmin::query::generate::{random_cq, QuerySpec};
use provmin::semiring::order::{compare, PolyOrder};
use provmin::storage::generator::{random_database, DatabaseSpec};

/// Strategy: a small random polynomial described by (seed, monomials,
/// degree, vars).
fn poly(seed: u64, monomials: usize, degree: usize, vars: usize) -> Polynomial {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Polynomial::zero_poly();
    for _ in 0..monomials {
        let d = rng.random_range(1..=degree.max(1));
        let m = Monomial::from_annotations(
            (0..d).map(|_| Annotation::new(&format!("pp{}", rng.random_range(0..vars.max(1))))),
        );
        p.add_monomial(m);
    }
    p
}

/// Brute-force p ≤ p' by trying all injective monomial-occurrence
/// mappings (exponential; only for tiny polynomials).
fn brute_force_leq(p: &Polynomial, q: &Polynomial) -> bool {
    let left: Vec<&Monomial> = p
        .iter()
        .flat_map(|(m, c)| std::iter::repeat_n(m, c as usize))
        .collect();
    let right: Vec<&Monomial> = q
        .iter()
        .flat_map(|(m, c)| std::iter::repeat_n(m, c as usize))
        .collect();
    fn assign(i: usize, left: &[&Monomial], right: &[&Monomial], used: &mut Vec<bool>) -> bool {
        if i == left.len() {
            return true;
        }
        for j in 0..right.len() {
            if !used[j] && left[i].leq(right[j]) {
                used[j] = true;
                if assign(i + 1, left, right, used) {
                    return true;
                }
                used[j] = false;
            }
        }
        false
    }
    assign(0, &left, &right, &mut vec![false; right.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn order_is_reflexive(seed in 0u64..500, n in 1usize..6) {
        let p = poly(seed, n, 4, 5);
        prop_assert!(poly_leq(&p, &p));
    }

    #[test]
    fn order_matches_brute_force(sa in 0u64..200, sb in 0u64..200) {
        let p = poly(sa, 4, 3, 4);
        let q = poly(sb, 4, 3, 4);
        prop_assert_eq!(poly_leq(&p, &q), brute_force_leq(&p, &q));
        prop_assert_eq!(poly_leq(&q, &p), brute_force_leq(&q, &p));
    }

    #[test]
    fn order_is_transitive_on_grown_chains(seed in 0u64..200) {
        // Build p ≤ q ≤ r by construction, check p ≤ r.
        let p = poly(seed, 3, 3, 4);
        let grow = Monomial::parse("grown_extra");
        let mut q = p.clone();
        q.add_monomial(grow.clone());
        let mut r = Polynomial::zero_poly();
        for (m, c) in q.iter() {
            r.add_occurrences(m.mul(&Monomial::parse("grown_pad")), c);
        }
        prop_assert!(poly_leq(&p, &q));
        prop_assert!(poly_leq(&q, &r));
        prop_assert!(poly_leq(&p, &r));
    }

    #[test]
    fn core_polynomial_is_terser_and_idempotent(seed in 0u64..500) {
        let p = poly(seed, 5, 4, 4);
        let core = core_polynomial(&p);
        prop_assert!(poly_leq(&core, &p));
        prop_assert!(is_core_shape(&core));
        prop_assert_eq!(core_polynomial(&core), core);
    }

    #[test]
    fn specialization_is_a_homomorphism(sa in 0u64..200, sb in 0u64..200) {
        let p = poly(sa, 3, 3, 4);
        let q = poly(sb, 3, 3, 4);
        let mut val = |a: Annotation| Natural(u64::from(a.id() % 3) + 1);
        let sum_then_eval = p.add(&q).eval(&mut val);
        let eval_then_sum = p.eval(&mut val).add(&q.eval(&mut val));
        prop_assert_eq!(sum_then_eval, eval_then_sum);
        let mul_then_eval = p.mul(&q).eval(&mut val);
        let eval_then_mul = p.eval(&mut val).mul(&q.eval(&mut val));
        prop_assert_eq!(mul_then_eval, eval_then_mul);
    }
}

/// Query + database generators for the heavier pipeline properties.
fn small_query(seed: u64, diseq_percent: u8) -> ConjunctiveQuery {
    let spec = QuerySpec {
        num_atoms: 1 + (seed % 3) as usize,
        num_vars: 1 + ((seed / 3) % 3) as usize,
        relations: vec![("R".to_owned(), 2)],
        head_arity: (seed % 2) as usize,
        diseq_percent,
    };
    random_cq(&spec, seed)
}

fn small_db(seed: u64) -> Database {
    random_database(&DatabaseSpec::single_binary(5, 3), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn minprov_preserves_equivalence(seed in 0u64..300, dp in 0u8..60) {
        let q = small_query(seed, dp);
        let min = minprov_cq(&q);
        prop_assert!(
            equivalent(&UnionQuery::single(q.clone()), &min),
            "MinProv changed semantics of {}", q
        );
    }

    #[test]
    fn minprov_output_is_terser_on_instances(seed in 0u64..200, db_seed in 0u64..50) {
        let q = small_query(seed, 30);
        let min = minprov_cq(&q);
        let db = small_db(db_seed);
        prop_assert!(
            leq_p_on(&db, &min, &UnionQuery::single(q.clone())),
            "MinProv({q}) not ≤_P original on db seed {db_seed}"
        );
    }

    #[test]
    fn theorem_5_1_direct_equals_query_based(seed in 0u64..150, db_seed in 0u64..40) {
        // For CQ inputs (no constants): exact core from the polynomial
        // alone equals evaluating the p-minimal rewriting.
        let q = small_query(seed, 0);
        let db = small_db(db_seed);
        let full = eval_cq(&q, &db);
        let minimal = minprov_cq(&q);
        let core_result = eval_ucq(&minimal, &db);
        for (t, p) in full.iter() {
            let direct = exact_core(p, &db, t, &BTreeSet::new()).unwrap();
            prop_assert_eq!(
                direct.clone(),
                core_result.provenance(t),
                "tuple {} of {}: direct {} vs query-based {}",
                t, q, direct, core_result.provenance(t)
            );
        }
    }

    #[test]
    fn canonical_rewriting_preserves_provenance(seed in 0u64..150, db_seed in 0u64..40) {
        use provmin::query::canonical::canonical_rewriting;
        let q = small_query(seed, 30);
        let can = canonical_rewriting(&q, &BTreeSet::new());
        let db = small_db(db_seed);
        let p = eval_cq(&q, &db);
        let p_can = eval_ucq(&can, &db);
        for (t, poly) in p.iter() {
            prop_assert_eq!(poly.clone(), p_can.provenance(t), "Thm 4.4 failed for {} on {}", q, t);
        }
        for (t, _) in p_can.iter() {
            prop_assert!(p.contains(t));
        }
    }

    #[test]
    fn standard_minimization_preserves_equivalence(seed in 0u64..300) {
        let q = small_query(seed, 0);
        let min = minimize_cq(&q);
        prop_assert!(cq_equivalent(&q, &min));
        prop_assert!(min.len() <= q.len());
        // Idempotent.
        prop_assert_eq!(minimize_cq(&min).len(), min.len());
    }

    #[test]
    fn evaluation_agrees_with_counting_semiring(seed in 0u64..100, db_seed in 0u64..30) {
        // num_occurrences of the polynomial = derivation count = eval
        // under the all-ones valuation.
        let q = small_query(seed, 20);
        let db = small_db(db_seed);
        let result = eval_cq(&q, &db);
        for (_t, p) in result.iter() {
            let n: Natural = p.eval(&mut |_| Natural(1));
            prop_assert_eq!(n.0, p.num_occurrences());
        }
    }

    #[test]
    fn minprov_is_provenance_idempotent(seed in 0u64..80, db_seed in 0u64..20) {
        // Running MinProv on its own output yields the same provenance
        // (both are p-minimal, so mutually ≤_P).
        let q = small_query(seed, 20);
        let once = minprov_cq(&q);
        let twice = provmin::core::minprov::minprov(&once);
        let db = small_db(db_seed);
        prop_assert!(leq_p_on(&db, &once, &twice));
        prop_assert!(leq_p_on(&db, &twice, &once));
    }
}

#[test]
fn compare_is_consistent_with_leq() {
    for sa in 0..30u64 {
        for sb in 0..10u64 {
            let p = poly(sa, 3, 3, 4);
            let q = poly(sb, 3, 3, 4);
            let expected = match (poly_leq(&p, &q), poly_leq(&q, &p)) {
                (true, true) => PolyOrder::Equivalent,
                (true, false) => PolyOrder::Less,
                (false, true) => PolyOrder::Greater,
                (false, false) => PolyOrder::Incomparable,
            };
            assert_eq!(compare(&p, &q), expected);
        }
    }
}
