//! Facade smoke test: the `provmin::prelude` alone is enough to run the
//! paper's core pipeline — parse a query, evaluate it with provenance,
//! rewrite it to p-minimal form, and cross-check the direct core
//! computation — without reaching into any `prov_*` crate directly.

use provmin::prelude::*;

/// The paper's running example end-to-end (Table 2 + Figure 1): every
/// step uses only prelude exports.
#[test]
fn prelude_covers_parse_eval_minimize() {
    // Table 2: the abstractly-tagged relation R.
    let mut db = Database::new();
    db.add("R", &["a", "a"], "s1");
    db.add("R", &["a", "b"], "s2");
    db.add("R", &["b", "a"], "s3");
    db.add("R", &["b", "b"], "s4");

    // Parse (Figure 1's Qconj) …
    let q = parse_cq("ans(x) :- R(x,y), R(y,x)").unwrap();

    // … evaluate with provenance (Def 2.12) …
    let result = eval_cq(&q, &db);
    let p = result.provenance(&Tuple::of(&["a"]));
    assert_eq!(p.to_string(), "s1·s1 + s2·s3");

    // … rewrite to the p-minimal equivalent (Thm 4.6) and re-evaluate …
    let minimal = minprov_cq(&q);
    assert!(equivalent(&UnionQuery::single(q.clone()), &minimal));
    let core = eval_ucq(&minimal, &db).provenance(&Tuple::of(&["a"]));
    assert_eq!(core.to_string(), "s1 + s2·s3");

    // … and the core is strictly terser than the original provenance.
    assert!(poly_leq(&core, &p));
    assert!(!poly_leq(&p, &core));

    // Direct core computation (Cor 5.6) agrees with the query rewriting.
    assert_eq!(core_polynomial(&p), core);
}

/// The UCQ path and the standard-minimization baseline are reachable from
/// the prelude too.
#[test]
fn prelude_covers_union_queries_and_baselines() {
    let mut db = Database::new();
    db.add("R", &["a", "b"], "t1");
    db.add("R", &["b", "b"], "t2");

    let u = parse_ucq("ans(x) :- R(x,y), R(y,y)\nans(x) :- R(x,x)").unwrap();
    let annotated = eval_ucq(&u, &db);
    assert_eq!(
        annotated.provenance(&Tuple::of(&["a"])).to_string(),
        "t1·t2"
    );

    // Standard (join) minimization keeps equivalence and never grows.
    let q = parse_cq("ans(x) :- R(x,y), R(y,z), R(y,z)").unwrap();
    let min = minimize_cq(&q);
    assert!(cq_equivalent(&q, &min));
    assert!(min.len() <= q.len());
}
