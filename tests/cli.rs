//! End-to-end exit-code contract of the `provmin` binary:
//!
//! * `0` — success
//! * `1` — runtime error (malformed query/database, missing file)
//! * `2` — usage error (unknown command/flag shape)
//! * `3` — budget-exhausted minimization: *sound partial* result plus a
//!   machine-readable resume cursor, both on **stdout**
//!
//! Code 3 is the one automation scripts branch on (resume vs. accept),
//! so it must stay distinct from the generic error codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn provmin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_provmin"))
        .args(args)
        .output()
        .expect("provmin binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn code(output: &Output) -> i32 {
    output.status.code().expect("not killed by a signal")
}

/// A temp database file dropped on scope exit.
struct TempDb {
    path: PathBuf,
}

impl TempDb {
    fn new(name: &str, contents: &str) -> TempDb {
        let path =
            std::env::temp_dir().join(format!("provmin_cli_{name}_{}.db", std::process::id()));
        std::fs::write(&path, contents).expect("temp db writes");
        TempDb { path }
    }

    fn path(&self) -> &str {
        self.path.to_str().expect("utf8 temp path")
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

const TABLE_2: &str = "R(a, a) : s1\nR(a, b) : s2\nR(b, a) : s3\nR(b, b) : s4\n";

#[test]
fn budget_exhausted_minimize_exits_3_with_cursor_on_stdout() {
    let output = provmin(&[
        "minimize",
        "--budget-steps",
        "1",
        "ans(x) :- R(x,y), R(y,z)",
    ]);
    assert_eq!(code(&output), 3, "partial result must exit 3");
    let out = stdout(&output);
    let cursor_line = out
        .lines()
        .find(|l| l.starts_with("resume-cursor: "))
        .unwrap_or_else(|| panic!("no resume cursor on stdout; got: {out:?}"));
    // Machine-readable: "resume-cursor: adjunct N completion M".
    let fields: Vec<&str> = cursor_line.split_whitespace().collect();
    assert_eq!(fields.len(), 5, "cursor line shape: {cursor_line:?}");
    assert_eq!((fields[1], fields[3]), ("adjunct", "completion"));
    assert!(fields[2].parse::<u64>().is_ok() && fields[4].parse::<u64>().is_ok());
    // The sound partial result precedes the cursor.
    assert!(
        out.lines().next().is_some_and(|l| l.contains(":-")),
        "partial query must be printed first: {out:?}"
    );
}

#[test]
fn generous_budget_completes_with_exit_0() {
    let output = provmin(&[
        "minimize",
        "--budget-steps",
        "100000",
        "ans(x) :- R(x,y), R(y,z)",
    ]);
    assert_eq!(code(&output), 0);
    assert!(!stdout(&output).contains("resume-cursor"));
}

#[test]
fn malformed_query_is_1_not_3() {
    let output = provmin(&["minimize", "this is not a query"]);
    assert_eq!(code(&output), 1, "parse errors are generic failures");
    let output = provmin(&["minimize", "--budget-steps", "1", "also ! not ! a ! query"]);
    assert_eq!(
        code(&output),
        1,
        "a malformed budgeted run is still a parse error, never a partial"
    );
}

#[test]
fn malformed_database_is_1_and_missing_file_is_1() {
    let db = TempDb::new("malformed", "R(a : oops\n");
    let output = provmin(&["eval", db.path(), "ans(x) :- R(x,x)"]);
    assert_eq!(code(&output), 1);
    let output = provmin(&["eval", "/nonexistent/provmin.db", "ans(x) :- R(x,x)"]);
    assert_eq!(code(&output), 1);
}

#[test]
fn usage_errors_are_2() {
    assert_eq!(code(&provmin(&[])), 2);
    assert_eq!(code(&provmin(&["frobnicate"])), 2);
    assert_eq!(
        code(&provmin(&["minimize", "--budget-steps", "NaN", "q"])),
        2
    );
    assert_eq!(
        code(&provmin(&["serve", "--no-such-flag"])),
        2,
        "unknown serve flags are usage errors like every other subcommand"
    );
    assert_eq!(code(&provmin(&["serve", "--workers", "0"])), 2);
    // Runtime serve failures (unloadable db) stay exit 1.
    assert_eq!(
        code(&provmin(&["serve", "--db", "/nonexistent/provmin.db"])),
        1
    );
}

#[test]
fn eval_succeeds_and_batch_tuple_agree() {
    let db = TempDb::new("table2", TABLE_2);
    let query = "ans(x) :- R(x,y), R(y,x), x != y ; ans(x) :- R(x,x)";
    let batched = provmin(&["eval", db.path(), query]);
    assert_eq!(code(&batched), 0);
    let tuple = provmin(&["eval", "--tuple", db.path(), query]);
    assert_eq!(code(&tuple), 0);
    assert_eq!(
        stdout(&batched),
        stdout(&tuple),
        "the default (batched) and --tuple paths must print identical results"
    );
    assert!(stdout(&batched).contains("(a)"));
}

// ------------------------------------------------------------- fuzz

#[test]
fn fuzz_agreement_is_0_with_a_summary() {
    let output = provmin(&["fuzz", "--spec", "fanout", "--seed", "11", "--cases", "8"]);
    assert_eq!(code(&output), 0);
    let text = stdout(&output);
    assert!(text.contains("fuzz: OK"), "summary line: {text}");
    assert!(
        text.contains("spec=fanout") && text.contains("seed=11"),
        "summary names the reproducing pair: {text}"
    );
}

#[test]
fn fuzz_divergence_is_1_with_the_replay_triple() {
    // The injection hook fabricates a divergence at case 5, exercising
    // the real reporting path end to end without planting an engine bug.
    let output = Command::new(env!("CARGO_BIN_EXE_provmin"))
        .args(["fuzz", "--spec", "mixed", "--seed", "9", "--cases", "20"])
        .env("PROVMIN_FUZZ_INJECT_CASE", "5")
        .output()
        .expect("provmin binary runs");
    assert_eq!(code(&output), 1, "divergence is exit 1");
    let text = stdout(&output);
    assert!(
        text.contains("fuzz: DIVERGENCE spec=mixed seed=9 case=5"),
        "the (spec, seed, case) triple is printed: {text}"
    );
    assert!(
        text.contains("replay: provmin fuzz --spec mixed --seed 9 --case 5"),
        "a copy-pasteable replay command is printed: {text}"
    );

    // The printed triple really replays: --case pins exactly that case.
    let replay = Command::new(env!("CARGO_BIN_EXE_provmin"))
        .args(["fuzz", "--spec", "mixed", "--seed", "9", "--case", "5"])
        .env("PROVMIN_FUZZ_INJECT_CASE", "5")
        .output()
        .expect("provmin binary runs");
    assert_eq!(code(&replay), 1, "the triple reproduces the divergence");
    assert!(stdout(&replay).contains("case=5"));

    // Without the injected bug the same triple agrees: exit 0.
    let clean = provmin(&["fuzz", "--spec", "mixed", "--seed", "9", "--case", "5"]);
    assert_eq!(code(&clean), 0, "same triple is clean without the bug");
}

#[test]
fn fuzz_flag_errors_are_2() {
    assert_eq!(code(&provmin(&["fuzz", "--spec", "no-such-spec"])), 2);
    assert_eq!(code(&provmin(&["fuzz", "--seed", "NaN"])), 2);
    assert_eq!(code(&provmin(&["fuzz", "--cases", "0"])), 2);
    assert_eq!(code(&provmin(&["fuzz", "--cases"])), 2, "missing value");
    assert_eq!(code(&provmin(&["fuzz", "--frobnicate"])), 2);
    // Eval/minimize flags don't leak into fuzz.
    assert_eq!(code(&provmin(&["fuzz", "--threads", "2"])), 2);
    assert_eq!(code(&provmin(&["fuzz", "--chunk-rows", "many"])), 2);
}

#[test]
fn fuzz_chunk_rows_overrides_the_eval_matrix() {
    // `--chunk-rows` is shared with eval/core; the fuzz subcommand must
    // still receive it (not the global eval-flag extraction).
    let output = provmin(&[
        "fuzz",
        "--spec",
        "fanout",
        "--seed",
        "11",
        "--cases",
        "4",
        "--chunk-rows",
        "3",
    ]);
    assert_eq!(
        code(&output),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout(&output).contains("fuzz: OK"));
}

#[test]
fn fuzz_list_specs_prints_every_builtin() {
    let output = provmin(&["fuzz", "--list-specs"]);
    assert_eq!(code(&output), 0);
    let text = stdout(&output);
    for name in [
        "mixed",
        "fanout",
        "cycles",
        "ucq-overlap",
        "diseq",
        "constants",
        "soak",
    ] {
        assert!(text.lines().any(|l| l == name), "{name} listed: {text}");
    }
}
