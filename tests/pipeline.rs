//! Cross-crate integration scenarios: provenance through views, general
//! annotations via valuations, and the full storage→engine→core pipeline.

use std::collections::BTreeSet;

use provmin::prelude::*;
use provmin::storage::textio::{format_database, parse_database};

/// Provenance composes through views: evaluating a query over a
/// materialized view and substituting each view tuple's polynomial equals
/// evaluating the unfolded query over the base database (the semiring
/// composition property underlying §6's "result of a previous
/// computation").
#[test]
fn provenance_composes_through_views() {
    let mut base = Database::new();
    base.add("R", &["a", "b"], "vw_s1");
    base.add("R", &["b", "a"], "vw_s2");
    base.add("R", &["a", "a"], "vw_s3");

    // View V(x) := R(x,y), R(y,x).
    let view_def = parse_cq("ans(x) :- R(x,y), R(y,x)").unwrap();
    let view_result = eval_cq(&view_def, &base);

    // Materialize the view with fresh annotations, remembering each
    // annotation's defining polynomial.
    let mut materialized = Database::new();
    let mut definition: std::collections::BTreeMap<Annotation, Polynomial> =
        std::collections::BTreeMap::new();
    for (tuple, p) in view_result.iter() {
        let a = materialized.insert_fresh(RelName::new("V"), tuple.clone());
        definition.insert(a, p.clone());
    }

    // Query over the view: Q(x) := V(x), V(y)  (boolean-ish join).
    let over_view = parse_cq("ans() :- V(x), V(y)").unwrap();
    let composed = eval_cq(&over_view, &materialized)
        .boolean_provenance()
        .substitute(&mut |a| {
            definition
                .get(&a)
                .cloned()
                .unwrap_or_else(|| Polynomial::var(a))
        });

    // Unfolded query over the base database.
    let unfolded = parse_cq("ans() :- R(x,y), R(y,x), R(x2,y2), R(y2,x2)").unwrap();
    let direct = eval_cq(&unfolded, &base).boolean_provenance();

    assert_eq!(composed, direct, "substitution must equal unfolding");
}

/// The full CLI-ish pipeline: text database → evaluation → exact core →
/// valuation, with a round-trip through the text format.
#[test]
fn text_roundtrip_then_core_then_valuation() {
    let text = "\
        # Table 2\n\
        R(a, a) : s1\n\
        R(a, b) : s2\n\
        R(b, a) : s3\n\
        R(b, b) : s4\n";
    let db = parse_database(text).unwrap();
    let reparsed = parse_database(&format_database(&db)).unwrap();
    assert_eq!(db.num_tuples(), reparsed.num_tuples());

    let q = parse_cq("ans(x) :- R(x,y), R(y,x)").unwrap();
    let result = eval_cq(&q, &reparsed);
    let t = Tuple::of(&["a"]);
    let core = exact_core(&result.provenance(&t), &reparsed, &t, &BTreeSet::new()).unwrap();
    assert_eq!(core, Polynomial::parse("s1 + s2·s3"));

    // Counting semiring: the core has 2 derivations for (a).
    let count: Natural = core.eval(&mut |_| Natural(1));
    assert_eq!(count, Natural(2));
}

/// Theorem 6.1 through the pipeline: collapse annotations via a renaming
/// (general annotations), and the p-minimal query's provenance stays ≤.
#[test]
fn general_annotations_preserve_the_order() {
    let mut db = Database::new();
    db.add("R", &["a", "b"], "ga_1");
    db.add("R", &["b", "a"], "ga_2");
    db.add("R", &["a", "a"], "ga_3");
    let q = parse_cq("ans(x) :- R(x,y), R(y,x)").unwrap();
    let minimal = minprov_cq(&q);

    let shared = Annotation::new("ga_shared");
    let collapse = Renaming::identity()
        .rename(Annotation::new("ga_1"), shared)
        .rename(Annotation::new("ga_2"), shared);

    let full = eval_cq(&q, &db);
    let core = eval_ucq(&minimal, &db);
    for (t, p) in full.iter() {
        let p_collapsed = collapse.apply_poly(p);
        let core_collapsed = collapse.apply_poly(&core.provenance(t));
        assert!(
            poly_leq(&core_collapsed, &p_collapsed),
            "Thm 6.1 violated at {t}: {core_collapsed} vs {p_collapsed}"
        );
    }
}

/// Evaluation strategies and the direct/query-based core all agree on a
/// larger generated instance (differential end-to-end check).
#[test]
fn strategies_and_cores_agree_on_generated_instance() {
    use provmin::engine::{eval_cq_with, EvalOptions};
    use provmin::storage::generator::{random_database, DatabaseSpec};
    let db = random_database(&DatabaseSpec::single_binary(30, 5), 99);
    let q = parse_cq("ans(x) :- R(x,y), R(y,x)").unwrap();

    let naive = eval_cq_with(&q, &db, EvalOptions::naive());
    let planned = eval_cq_with(&q, &db, EvalOptions::default());
    assert_eq!(naive, planned);

    let minimal = minprov_cq(&q);
    let via_query = eval_ucq(&minimal, &db);
    for (t, p) in planned.iter() {
        let direct = exact_core(p, &db, t, &BTreeSet::new()).unwrap();
        assert_eq!(direct, via_query.provenance(t), "tuple {t}");
    }
}

/// Deletion propagation answers agree between full and core provenance on
/// generated instances (the examples/deletion_propagation.rs invariant,
/// as a test).
#[test]
fn deletion_answers_agree_between_full_and_core() {
    use provmin::storage::generator::{random_database, DatabaseSpec};
    let db = random_database(&DatabaseSpec::single_binary(12, 3), 5);
    let q = parse_cq("ans(x) :- R(x,y), R(y,x)").unwrap();
    let result = eval_cq(&q, &db);
    let annotations: Vec<Annotation> = db
        .relations()
        .flat_map(|r| r.iter().map(|(_, a)| *a))
        .collect();
    for (_t, p) in result.iter() {
        let core = core_polynomial(p);
        for &victim in &annotations {
            let survive_full = p.eval(&mut |a| Boolean(a != victim));
            let survive_core = core.eval(&mut |a| Boolean(a != victim));
            assert_eq!(survive_full, survive_core);
        }
    }
}
