//! Theorem-by-theorem verification on concrete instances, through the
//! public facade.

use std::collections::BTreeSet;

use provmin::paper::artifacts;
use provmin::prelude::*;
use provmin::semiring::order::PolyOrder;

#[test]
fn theorem_3_1_homomorphism_theorem_for_complete_queries() {
    use provmin::query::homomorphism::find_homomorphism;
    // Q complete, Q' arbitrary: Q ⊆ Q' iff hom Q' → Q.
    let q = parse_cq("ans() :- R(v1,v2), v1 != v2").unwrap();
    let q_prime = parse_cq("ans() :- R(x,y)").unwrap();
    assert!(q.is_complete());
    assert_eq!(
        find_homomorphism(&q_prime, &q).is_some(),
        contained_in(&UnionQuery::single(q.clone()), &UnionQuery::single(q_prime))
    );
}

#[test]
fn theorem_3_3_surjective_hom_implies_leq_p() {
    use provmin::core::order::leq_p_by_surjective_hom;
    use provmin::storage::generator::{random_database, DatabaseSpec};
    // Qunion adjuncts... use Q=R(x),R(y) vs Q'=R(z): surjective hom Q→Q'.
    let q = parse_cq("ans() :- R(x), R(y)").unwrap();
    let q_prime = parse_cq("ans() :- R(z)").unwrap();
    assert!(leq_p_by_surjective_hom(&q_prime, &q));
    // Consequence on instances: P(Q') ≤ P(Q) everywhere.
    let spec = DatabaseSpec {
        relations: vec![("R".to_owned(), 1, 5)],
        domain_size: 4,
        value_prefix: "t33".to_owned(),
    };
    for seed in 0..6 {
        let db = random_database(&spec, seed);
        assert!(leq_p_on(
            &db,
            &UnionQuery::single(q_prime.clone()),
            &UnionQuery::single(q.clone())
        ));
    }
}

#[test]
fn theorem_3_5_no_pminimal_in_cq_diseq() {
    use provmin::core::order::compare_on;
    let qnopmin = UnionQuery::single(artifacts::fig2_qnopmin());
    let qalt = UnionQuery::single(artifacts::fig2_qalt());
    let d = artifacts::table_4_database();
    let d_prime = artifacts::table_5_database();
    assert_eq!(compare_on(&d, &qalt, &qnopmin), PolyOrder::Less);
    assert_eq!(compare_on(&d_prime, &qnopmin, &qalt), PolyOrder::Less);
}

#[test]
fn lemma_3_8_non_unique_standard_minimal_queries() {
    // QnoPmin and Qalt are equivalent, both standard-minimal (6 atoms,
    // none removable), yet not isomorphic — settling the open problem of
    // Klug [22] the paper mentions.
    use provmin::query::homomorphism::are_isomorphic;
    let a = artifacts::fig2_qnopmin();
    let b = artifacts::fig2_qalt();
    assert!(cq_equivalent(&a, &b));
    assert!(!are_isomorphic(&a, &b));
}

#[test]
fn theorem_3_9_standard_minimal_iff_pminimal_in_cq() {
    use provmin::core::pminimal::is_p_minimal_in_cq;
    use provmin::core::standard::is_minimal_cq;
    for text in [
        "ans(x) :- R(x,y), R(y,x)",
        "ans(x) :- R(x,y), R(x,z)",
        "ans() :- R(x,y), R(y,z), R(z,x)",
    ] {
        let q = parse_cq(text).unwrap();
        assert_eq!(is_minimal_cq(&q), is_p_minimal_in_cq(&q), "{text}");
    }
}

#[test]
fn theorem_3_11_ucq_beats_pminimal_cq() {
    let db = artifacts::table_2_database();
    let qconj = UnionQuery::single(artifacts::fig1_qconj());
    let qunion = artifacts::fig1_qunion();
    assert!(equivalent(&qconj, &qunion));
    assert!(leq_p_on(&db, &qunion, &qconj));
    assert!(!leq_p_on(&db, &qconj, &qunion));
}

#[test]
fn theorem_3_12_complete_minimization() {
    let q = parse_cq("ans() :- R(v1,v1), R(v1,v1), R(v1,v1)").unwrap();
    let min = minimize_complete(&q);
    assert_eq!(min.len(), 1);
    assert!(cq_equivalent(&q, &min));
    // And it is p-minimal overall: MinProv does not improve on it.
    let db = artifacts::table_2_database();
    let via_minprov = minprov_cq(&q);
    assert!(leq_p_on(
        &db,
        &UnionQuery::single(min.clone()),
        &via_minprov
    ));
    assert!(leq_p_on(&db, &via_minprov, &UnionQuery::single(min)));
}

#[test]
fn theorem_4_3_and_4_4_canonical_rewriting() {
    use provmin::query::canonical::canonical_rewriting;
    let q = artifacts::fig3_qhat();
    let can = canonical_rewriting(&q, &BTreeSet::new());
    assert!(equivalent(&UnionQuery::single(q.clone()), &can));
    // Provenance equality on both paper databases.
    for db in [artifacts::table_2_database(), artifacts::table_6_database()] {
        let p = eval_cq(&q, &db).boolean_provenance();
        let p_can = eval_ucq(&can, &db).boolean_provenance();
        assert_eq!(p, p_can, "Thm 4.4: Can(Q) ≡_P Q");
    }
}

#[test]
fn theorem_4_6_minprov_is_pminimal() {
    use provmin::storage::generator::{random_database, DatabaseSpec};
    // MinProv's output is ≤_P every equivalent query we can name.
    let q = artifacts::fig1_qconj();
    let minimal = minprov_cq(&q);
    let rivals = [UnionQuery::single(q.clone()), artifacts::fig1_qunion()];
    let spec = DatabaseSpec::single_binary(8, 3);
    for rival in &rivals {
        for seed in 0..5 {
            let db = random_database(&spec, seed);
            assert!(
                leq_p_on(&db, &minimal, rival),
                "MinProv output must be ≤_P {rival} on seed {seed}"
            );
        }
    }
}

#[test]
fn theorem_4_10_exponential_output() {
    use provmin::query::generate::qn_family;
    let sizes: Vec<usize> = (1..=3)
        .map(|n| minprov_cq(&qn_family(n)).total_atoms())
        .collect();
    assert!(sizes[1] as f64 >= 1.9 * sizes[0] as f64);
    assert!(sizes[2] as f64 >= 1.9 * sizes[1] as f64);
}

#[test]
fn theorem_5_1_direct_computation() {
    let db = artifacts::table_6_database();
    let q = artifacts::fig3_qhat();
    let p = eval_cq(&q, &db).boolean_provenance();
    // Part 1: PTIME, polynomial only.
    let shape = core_polynomial(&p);
    // Part 2: exact with db, tuple, constants.
    let exact = exact_core(&p, &db, &Tuple::empty(), &BTreeSet::new()).unwrap();
    assert_eq!(shape.monomials().count(), exact.monomials().count());
    let via_query = eval_ucq(&minprov_cq(&q), &db).boolean_provenance();
    assert_eq!(exact, via_query);
}

#[test]
fn theorem_6_1_pminimality_transfers_to_general_annotations() {
    // Collapse annotations and check the order still holds.
    let db = artifacts::table_2_database();
    let q = artifacts::fig1_qconj();
    let minimal = minprov_cq(&q);
    let t = Tuple::of(&["a"]);
    let p_min = eval_ucq(&minimal, &db).provenance(&t);
    let p_q = eval_cq(&q, &db).provenance(&t);
    let collapse = Renaming::identity()
        .rename(Annotation::new("s2"), Annotation::new("s1"))
        .rename(Annotation::new("s3"), Annotation::new("s1"));
    assert!(poly_leq(
        &collapse.apply_poly(&p_min),
        &collapse.apply_poly(&p_q)
    ));
}

#[test]
fn theorem_6_2_direct_computation_needs_abstract_tags() {
    let (q, q_prime) = artifacts::theorem_6_2_queries();
    let db = artifacts::theorem_6_2_database();
    assert!(!cq_equivalent(&q, &q_prime));
    let s = Annotation::new("t62s_shared");
    let collapse = Renaming::identity()
        .rename(Annotation::new("t62_a"), s)
        .rename(Annotation::new("t62_b"), s);
    let t = Tuple::of(&["a"]);
    let p_q = collapse.apply_poly(&eval_cq(&q, &db).provenance(&t));
    let p_qp = collapse.apply_poly(&eval_cq(&q_prime, &db).provenance(&t));
    assert_eq!(p_q, p_qp, "identical polynomials under collapsed tags");
    let core_q = collapse.apply_poly(&eval_ucq(&minprov_cq(&q), &db).provenance(&t));
    let core_qp = collapse.apply_poly(&eval_ucq(&minprov_cq(&q_prime), &db).provenance(&t));
    assert_ne!(
        core_q, core_qp,
        "different cores: direct computation impossible"
    );
}

#[test]
fn corollary_3_10_decision_problem_roundtrip() {
    use provmin::core::pminimal::decide_p_minimal_cq;
    let q = parse_cq("ans(x) :- R(x,y), R(x,z)").unwrap();
    let good = parse_cq("ans(x) :- R(x,y)").unwrap();
    assert!(decide_p_minimal_cq(&q, &good));
}
