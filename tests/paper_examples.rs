//! End-to-end checks of every numbered example in the paper, through the
//! public `provmin` facade.

use provmin::paper::artifacts;
use provmin::prelude::*;

#[test]
fn example_2_3_completeness() {
    let q = parse_cq("ans(x,y) :- R(x,y), S(y,'c'), x != y, y != 'c'").unwrap();
    let q_complete = parse_cq("ans(x,y) :- R(x,y), S(y,'c'), x != y, y != 'c', x != 'c'").unwrap();
    assert!(!q.is_complete());
    assert!(q_complete.is_complete());
}

#[test]
fn example_2_5_qunion_classes() {
    let qunion = artifacts::fig1_qunion();
    assert_eq!(qunion.len(), 2);
    assert!(qunion.is_complete(), "Qunion is in cUCQ≠");
}

#[test]
fn example_2_7_assignments() {
    use provmin::engine::assignments;
    let db = artifacts::table_2_database();
    let q1 = artifacts::fig1_q1();
    let q2 = artifacts::fig1_q2();
    assert_eq!(assignments(&q1, &db).len(), 2);
    assert_eq!(assignments(&q2, &db).len(), 2);
}

#[test]
fn example_2_9_containment() {
    let q2 = artifacts::fig1_q2();
    let qconj = artifacts::fig1_qconj();
    assert!(contained_in(
        &UnionQuery::single(q2),
        &UnionQuery::single(qconj)
    ));
}

#[test]
fn example_2_11_homomorphisms() {
    use provmin::query::homomorphism::find_homomorphism;
    let qconj = artifacts::fig1_qconj();
    let q2 = artifacts::fig1_q2();
    assert!(find_homomorphism(&qconj, &q2).is_some());
    assert!(find_homomorphism(&q2, &qconj).is_none());
}

#[test]
fn example_2_13_table_3() {
    let db = artifacts::table_2_database();
    let result = eval_ucq(&artifacts::fig1_qunion(), &db);
    assert_eq!(
        result.provenance(&Tuple::of(&["a"])),
        Polynomial::parse("s2·s3 + s1")
    );
    assert_eq!(
        result.provenance(&Tuple::of(&["b"])),
        Polynomial::parse("s3·s2 + s4")
    );
}

#[test]
fn example_2_14_different_provenance_for_equivalent_queries() {
    let db = artifacts::table_2_database();
    let conj = eval_cq(&artifacts::fig1_qconj(), &db);
    assert_eq!(
        conj.provenance(&Tuple::of(&["a"])),
        Polynomial::parse("s2·s3 + s1·s1")
    );
    assert_eq!(
        conj.provenance(&Tuple::of(&["b"])),
        Polynomial::parse("s3·s2 + s4·s4")
    );
}

#[test]
fn example_2_16_order() {
    let p1 = Polynomial::parse("s1·s2 + s3 + s3");
    let p2 = Polynomial::parse("s1·s2·s2 + s2·s3 + s3·s4 + s5");
    assert!(poly_lt(&p1, &p2));
    assert!(!poly_leq(&p2, &p1));
}

#[test]
fn example_2_18_qunion_strictly_terser() {
    let db = artifacts::table_2_database();
    let qunion = artifacts::fig1_qunion();
    let qconj = UnionQuery::single(artifacts::fig1_qconj());
    assert!(leq_p_on(&db, &qunion, &qconj));
    assert!(!leq_p_on(&db, &qconj, &qunion));
}

#[test]
fn example_3_2_containment_hom_gap() {
    use provmin::query::containment::{contained_via_homomorphism, cq_diseq_contained_in};
    let q = parse_cq("ans() :- R(x,y), R(y,z), x != z").unwrap();
    let q_prime = parse_cq("ans() :- R(x2,y2), x2 != y2").unwrap();
    assert!(cq_diseq_contained_in(&q, &q_prime));
    assert!(!contained_via_homomorphism(&q, &q_prime));
}

#[test]
fn example_3_4_no_surjective_hom() {
    use provmin::query::homomorphism::{find_homomorphism, find_surjective_homomorphism};
    let q = parse_cq("ans() :- R(x), R(y)").unwrap();
    let q_prime = parse_cq("ans() :- R(z)").unwrap();
    assert!(find_homomorphism(&q_prime, &q).is_some());
    assert!(find_surjective_homomorphism(&q_prime, &q).is_none());
    assert!(find_surjective_homomorphism(&q, &q_prime).is_some());
    // And the provenance consequence on a single-tuple relation:
    let mut db = Database::new();
    db.add("R", &["a"], "ex34_s");
    let p = eval_cq(&q, &db).boolean_provenance();
    let p_prime = eval_cq(&q_prime, &db).boolean_provenance();
    assert!(poly_lt(&p_prime, &p));
}

#[test]
fn example_4_2_five_completions() {
    use provmin::query::canonical::canonical_rewriting;
    use std::collections::BTreeSet;
    let q = artifacts::example_4_2_query();
    let consts: BTreeSet<Value> = [Value::new("a"), Value::new("b")].into();
    let can = canonical_rewriting(&q, &consts);
    assert_eq!(can.len(), 5);
}

#[test]
fn example_4_7_minprov_steps() {
    let trace = minprov_trace(&UnionQuery::single(artifacts::fig3_qhat()));
    assert_eq!(trace.canonical.len(), 5);
    assert_eq!(trace.output.len(), 2);
}

#[test]
fn examples_5_2_to_5_8_provenance_pipeline() {
    let db = artifacts::table_6_database();
    let trace = minprov_trace(&UnionQuery::single(artifacts::fig3_qhat()));
    let p = eval_ucq(&trace.input, &db).boolean_provenance();
    let p_i = eval_ucq(&trace.canonical, &db).boolean_provenance();
    let p_ii = eval_ucq(&trace.minimized, &db).boolean_provenance();
    let p_iii = eval_ucq(&trace.output, &db).boolean_provenance();
    assert_eq!(p, Polynomial::parse("s1·s1·s1 + 3·s1·s2·s3 + 3·s2·s4·s5"));
    assert_eq!(p_i, p);
    assert_eq!(p_ii, Polynomial::parse("s1 + 3·s1·s2·s3 + 3·s2·s4·s5"));
    assert_eq!(p_iii, Polynomial::parse("s1 + 3·s2·s4·s5"));
}
