//! Finding the core provenance when the query is unavailable (paper §5's
//! motivating scenario: "even in absence of the original query, e.g. if it
//! is not available due to confidentiality or to its loss").
//!
//! A vendor evaluated a confidential query over our database and handed
//! back annotated results. We reconstruct the core provenance — including
//! exact coefficients — from each tuple's polynomial, the database, and
//! the set of constants the query used (Theorem 5.1, Lemmas 5.7/5.9).
//!
//! Run with: `cargo run --example query_confidentiality`

use std::collections::BTreeSet;

use provmin::core::direct::{adjunct_of_monomial, exact_core};
use provmin::prelude::*;

fn main() {
    // The database we handed to the vendor (paper Table 6, D̂).
    let mut db = Database::new();
    db.add("R", &["a", "a"], "s1");
    db.add("R", &["a", "b"], "s2");
    db.add("R", &["b", "a"], "s3");
    db.add("R", &["b", "c"], "s4");
    db.add("R", &["c", "a"], "s5");

    // The vendor ran a confidential query Q̂ (we never see it!) and
    // returned annotated results. Simulate that step behind a scope so
    // nothing but the polynomial escapes.
    let (output_tuple, returned_polynomial) = {
        let secret_query = parse_cq("ans() :- R(x,y), R(y,z), R(z,x)").expect("parses");
        let result = eval_cq(&secret_query, &db);
        (Tuple::empty(), result.boolean_provenance())
    };
    println!("Vendor returned: {output_tuple} [{returned_polynomial}]");

    // We know the vendor's query used no constants.
    let consts: BTreeSet<Value> = BTreeSet::new();

    // Part 1 (Cor 5.6): the core shape, PTIME, from the polynomial alone.
    let shape = core_polynomial(&returned_polynomial);
    println!("PTIME core shape : {shape}");

    // Part 2 (Lemma 5.9): exact coefficients via automorphism counting of
    // reconstructed adjuncts — needs db + tuple + Const(Q), not Q.
    let core = exact_core(&returned_polynomial, &db, &output_tuple, &consts)
        .expect("core computable from (p, D, t, Const(Q))");
    println!("exact core       : {core}");

    // Peek at the reconstruction machinery: the adjunct behind s2·s4·s5.
    let m = Monomial::parse("s2·s4·s5");
    let adjunct =
        adjunct_of_monomial(&m, &db, &output_tuple, &consts).expect("adjunct reconstructable");
    println!("\nReconstructed adjunct for {m}:\n  {adjunct}");
    println!(
        "  (3 automorphisms → coefficient 3; this is the hidden query's\n   \
         complete-triangle case, recovered without ever seeing the query)"
    );

    // Sanity: rewriting the (secret) query with MinProv and evaluating
    // would give exactly this polynomial. We check it here — the vendor
    // could not, but the theorem guarantees agreement.
    let secret_query = parse_cq("ans() :- R(x,y), R(y,z), R(z,x)").expect("parses");
    let via_query = eval_ucq(&minprov_cq(&secret_query), &db).boolean_provenance();
    assert_eq!(core, via_query);
    println!("\nDirect core == query-based core: ✓ (Theorem 5.1)");

    // Caveat (§6, Theorem 6.2): this only works on abstractly-tagged
    // databases. If two tuples shared an annotation, two non-equivalent
    // queries could return identical polynomials with different cores.
    let (q, q_prime) = (
        parse_cq("ans(x) :- R2(x), R2(y), x != y").expect("parses"),
        parse_cq("ans(x) :- R2(x), R2(x)").expect("parses"),
    );
    let mut db2 = Database::new();
    db2.add("R2", &["a"], "u_a");
    db2.add("R2", &["b"], "u_b");
    let collapse = Renaming::identity()
        .rename(Annotation::new("u_a"), Annotation::new("u"))
        .rename(Annotation::new("u_b"), Annotation::new("u"));
    let t = Tuple::of(&["a"]);
    let p1 = collapse.apply_poly(&eval_cq(&q, &db2).provenance(&t));
    let p2 = collapse.apply_poly(&eval_cq(&q_prime, &db2).provenance(&t));
    println!("\n§6 caveat: under collapsed tags both queries return {p1} = {p2},");
    println!("but their cores differ (u·u vs u) — the query is genuinely needed there.");
    assert_eq!(p1, p2);
}
