//! Trust assessment on core provenance (paper §1's motivating use case).
//!
//! Each source tuple carries a clearance level; the clearance required to
//! trust an output tuple is its provenance evaluated in the access-control
//! semiring (alternative derivations take the min, joint use the max).
//! Because the core provenance keeps only derivations every equivalent
//! query must perform, feeding the tool the *core* instead of the full
//! polynomial gives the same answer for p-minimal-realizable queries while
//! being smaller — and never reports a clearance that depends on how the
//! optimizer happened to phrase the query.
//!
//! Run with: `cargo run --example trust_assessment`

use provmin::prelude::*;

fn main() {
    // Intelligence reports: who met whom, per source, with a clearance.
    let mut db = Database::new();
    db.add("Met", &["ana", "boris"], "field_report");
    db.add("Met", &["boris", "ana"], "satellite");
    db.add("Met", &["ana", "ana"], "self_evident");

    let clearance = Valuation::constant(Clearance::TopSecret)
        .with(Annotation::new("field_report"), Clearance::Secret)
        .with(Annotation::new("satellite"), Clearance::Confidential)
        .with(Annotation::new("self_evident"), Clearance::Public);

    // "Who met someone who met them back?" — as an analyst wrote it.
    let query = parse_cq("ans(x) :- Met(x,y), Met(y,x)").expect("query parses");
    println!("Query: {query}\n");

    let result = eval_cq(&query, &db);
    println!(
        "{:<8} {:<40} {:<15} {:<15}",
        "tuple", "provenance", "full clearance", "core clearance"
    );
    for (tuple, provenance) in result.iter() {
        let full = clearance.eval(provenance);
        let core = core_polynomial(provenance);
        let core_clearance = clearance.eval(&core);
        println!(
            "{:<8} {:<40} {:<15?} {:<15?}",
            tuple.to_string(),
            provenance.to_string(),
            full,
            core_clearance
        );
        // The core never *raises* the required clearance: it keeps a
        // subset of derivations, each using a subset of the tuples, and in
        // this semiring fewer/terser derivations can only help or tie...
        // but interestingly it can LOWER it: (ana) derives via
        // self_evident·self_evident in the full provenance, which the core
        // reduces to a single use.
        assert_eq!(
            core_clearance, full,
            "idempotent semirings are insensitive to exponents"
        );
    }

    // Where the core genuinely matters: size of the input to the tool.
    let p_ana = result.provenance(&Tuple::of(&["ana"]));
    let core_ana = core_polynomial(&p_ana);
    println!(
        "\nInput size for (ana): full = {} factor occurrences, core = {}",
        p_ana.size(),
        core_ana.size()
    );

    // And stability: an equivalent query the optimizer might prefer.
    let rewritten = parse_ucq(
        "ans(x) :- Met(x,y), Met(y,x), x != y\n\
         ans(x) :- Met(x,x)",
    )
    .expect("rewritten query parses");
    let rewritten_result = eval_ucq(&rewritten, &db);
    let p2 = rewritten_result.provenance(&Tuple::of(&["ana"]));
    println!("\nEquivalent rewritten query's provenance for (ana): {p2}");
    println!("Its core: {}", core_polynomial(&p2));
    assert_eq!(
        core_polynomial(&p2),
        core_ana,
        "the core provenance is query-plan independent"
    );
    println!("→ identical cores: trust scores no longer depend on the query plan.");
}
