//! Quickstart: evaluate a query with provenance, find its p-minimal
//! equivalent, and compute the core provenance — the paper's Figure 1 /
//! Table 2 running example, end to end.
//!
//! Run with: `cargo run --example quickstart`

use provmin::prelude::*;

fn main() {
    // ── 1. An abstractly-tagged database (paper Table 2) ──────────────
    let mut db = Database::new();
    db.add("R", &["a", "a"], "s1");
    db.add("R", &["a", "b"], "s2");
    db.add("R", &["b", "a"], "s3");
    db.add("R", &["b", "b"], "s4");
    println!("Input database:\n{db}");

    // ── 2. A conjunctive query (Figure 1's Qconj) ─────────────────────
    let qconj = parse_cq("ans(x) :- R(x,y), R(y,x)").expect("query parses");
    println!("Query: {qconj}\n");

    // ── 3. Provenance-annotated evaluation (Def 2.12) ─────────────────
    let result = eval_cq(&qconj, &db);
    println!("Annotated result:");
    for (tuple, provenance) in result.iter() {
        println!("  {tuple}  [{provenance}]");
    }

    // ── 4. p-minimization: the core provenance via MinProv (Thm 4.6) ──
    let minimal = minprov_cq(&qconj);
    println!("\np-minimal equivalent (realizes the core provenance):\n{minimal}");
    let core_result = eval_ucq(&minimal, &db);
    println!("\nCore provenance:");
    for (tuple, provenance) in core_result.iter() {
        println!("  {tuple}  [{provenance}]");
    }

    // ── 5. The same core, directly from the polynomial (Thm 5.1) ──────
    let t = Tuple::of(&["a"]);
    let p = result.provenance(&t);
    let direct = core_polynomial(&p);
    println!("\nDirect computation for {t}: {p}  →  {direct}");
    assert_eq!(direct, core_result.provenance(&t));

    // ── 6. The order relation certifies the improvement (Def 2.17) ────
    assert!(poly_lt(&direct, &p), "core provenance is strictly terser");
    println!("\ncore ≤ original: {}", poly_leq(&direct, &p));
    println!(
        "original ≤ core: {} (strictly terser!)",
        poly_leq(&p, &direct)
    );
}
