//! Plan-level provenance minimization: take a relational-algebra plan (as
//! an optimizer would produce), compile it to UCQ≠, and p-minimize — the
//! core provenance of the *plan*, independent of how it was phrased.
//!
//! Run with: `cargo run --example plan_minimization`

use provmin::algebra::{core_plan, eval, to_query, Condition, Expr};
use provmin::prelude::*;

fn main() {
    let mut db = Database::new();
    db.add("R", &["a", "a"], "s1");
    db.add("R", &["a", "b"], "s2");
    db.add("R", &["b", "a"], "s3");
    db.add("R", &["b", "b"], "s4");

    // The optimizer's plan for "x related to itself in two steps":
    // π#0( σ#0=#3 ∧ #1=#2 (R × R) ).
    let plan = Expr::scan("R", 2)
        .product(Expr::scan("R", 2))
        .select(vec![Condition::EqCols(0, 3), Condition::EqCols(1, 2)])
        .project(vec![0]);
    println!("Plan: {plan}\n");

    // Direct annotated evaluation (Green et al. semantics).
    let rows = eval(&plan, &db).expect("plan is well-formed");
    println!("Annotated result:");
    for (t, p) in &rows {
        println!("  {t}  [{p}]");
    }

    // Compile to UCQ≠: same provenance, now amenable to the paper's
    // machinery.
    let query = to_query(&plan).expect("well-formed").expect("satisfiable");
    println!("\nCompiled query:\n{query}");

    // p-minimize the plan.
    let core = core_plan(&plan).expect("well-formed").expect("satisfiable");
    println!("\nCore plan (p-minimal UCQ≠):\n{core}");
    let core_rows = eval_ucq(&core, &db);
    println!("\nCore provenance:");
    for (t, p) in core_rows.iter() {
        println!("  {t}  [{p}]");
        let full = rows.get(t).expect("same result set");
        assert!(poly_leq(p, full));
        assert_eq!(p, &core_polynomial(full), "direct transformation agrees");
    }
    println!("\nplan provenance minimized: ✓ (query-based == polynomial-based)");
}
