//! View maintenance / deletion propagation on provenance polynomials
//! (paper §1's motivating use case, after Green et al.'s update exchange).
//!
//! A materialized view stores each output tuple's provenance polynomial.
//! When a source tuple is deleted, we do not re-run the query: we
//! substitute 0 for the deleted annotation and check whether the
//! polynomial vanishes. The core provenance answers the *stable* version
//! of the question — would the tuple survive under every equivalent
//! query's computation — and is the compact input one would persist.
//!
//! Run with: `cargo run --example deletion_propagation`

use provmin::prelude::*;

/// Does the view tuple survive deleting `victim`, per polynomial `p`?
fn survives(p: &Polynomial, victim: Annotation) -> bool {
    let specialized = p.eval(&mut |a| {
        if a == victim {
            Boolean(false)
        } else {
            Boolean(true)
        }
    });
    specialized.0
}

fn main() {
    // A who-follows-whom graph.
    let mut db = Database::new();
    db.add("Follows", &["ada", "bob"], "f1");
    db.add("Follows", &["bob", "ada"], "f2");
    db.add("Follows", &["ada", "ada"], "f3"); // ada follows herself
    db.add("Follows", &["bob", "cat"], "f4");
    db.add("Follows", &["cat", "bob"], "f5");

    // View: users in a mutual-follow relationship (possibly with self).
    let view_def = parse_cq("ans(x) :- Follows(x,y), Follows(y,x)").expect("view parses");
    let view = eval_cq(&view_def, &db);

    println!("Materialized view with provenance:");
    for (tuple, p) in view.iter() {
        println!("  {tuple}  [{p}]");
    }

    // Delete f1 = Follows(ada, bob). Which view tuples survive?
    let victim = Annotation::new("f1");
    println!("\nDeleting Follows(ada,bob) [{victim}]:");
    for (tuple, p) in view.iter() {
        let keep = survives(p, victim);
        println!("  {tuple}: {}", if keep { "survives" } else { "DELETED" });
    }

    // The stored artifact can be the core provenance: smaller, and it
    // yields the same survival answers because the boolean semiring is
    // insensitive to exponents and to containing monomials (a containing
    // monomial vanishes only if one of its factors does — but then either
    // the contained monomial also vanishes, or another derivation remains).
    println!("\nStored sizes (factor occurrences): full vs core");
    for (tuple, p) in view.iter() {
        let core = core_polynomial(p);
        println!("  {tuple}: {} vs {}", p.size(), core.size());
        for victim_name in ["f1", "f2", "f3", "f4", "f5"] {
            let v = Annotation::new(victim_name);
            assert_eq!(
                survives(p, v),
                survives(&core, v),
                "core provenance must answer deletion queries identically"
            );
        }
    }
    println!("\nAll deletion answers agree between full and core provenance.");

    // Counting maintenance: how many derivations does each tuple lose?
    let t_ada = Tuple::of(&["ada"]);
    let p_ada = view.provenance(&t_ada);
    let count_before: Natural = p_ada.eval(&mut |_| Natural(1));
    let count_after: Natural = p_ada.eval(&mut |a| {
        if a == victim {
            Natural(0)
        } else {
            Natural(1)
        }
    });
    println!(
        "\n(ada) derivation count: {} → {} after deleting f1",
        count_before.0, count_after.0
    );
}
