//! Provenance through a multi-stage Datalog pipeline (the paper's §8
//! future-work direction, realized for non-recursive programs).
//!
//! A curation pipeline derives `trusted_pair` facts through two
//! intermediate views. We evaluate with provenance, get each derived
//! fact's polynomial over *source* annotations, and compute the
//! pipeline's core provenance by p-minimizing the unfolded program.
//!
//! Run with: `cargo run --example datalog_pipeline`

use provmin::datalog::{core_query, evaluate, unfold, Program};
use provmin::prelude::*;

fn main() {
    // Source data: raw links with per-extraction annotations.
    let mut sources = Database::new();
    sources.add("Link", &["alpha", "beta"], "crawl_1");
    sources.add("Link", &["beta", "alpha"], "crawl_2");
    sources.add("Link", &["alpha", "alpha"], "crawl_3");
    sources.add("Link", &["beta", "gamma"], "crawl_4");

    // The pipeline:
    //   related(x,y)      — a link in either direction
    //   mutual(x)         — x participates in a round trip
    let program = Program::parse(
        "related(x,y) :- Link(x,y)\n\
         related(x,y) :- Link(y,x)\n\
         mutual(x) :- related(x,y), related(y,x)",
    )
    .expect("program parses and is non-recursive");
    println!("Program:\n{program}");

    // Evaluate bottom-up with provenance.
    let result = evaluate(&program, &sources);
    println!("mutual(·) with provenance over source annotations:");
    let mutual = RelName::new("mutual");
    for (tuple, p) in result.tuples(mutual) {
        println!("  {tuple}  [{p}]");
    }

    // The unfolded definition of `mutual` is a plain UCQ over Link —
    // the reduction that makes the paper's theory apply.
    let unfolded = unfold(&program, mutual).expect("mutual is satisfiable");
    println!(
        "\nUnfolded definition ({} adjuncts over Link)",
        unfolded.len()
    );

    // Core provenance of the whole pipeline: MinProv on the unfolding.
    let core = core_query(&program, mutual).expect("core exists");
    println!("\np-minimal pipeline ({} adjuncts):\n{core}", core.len());
    let core_result = eval_ucq(&core, &sources);
    println!("\nCore provenance of mutual(·):");
    for (tuple, p) in core_result.iter() {
        println!("  {tuple}  [{p}]");
    }

    // The core is never larger, per tuple, than the pipeline's provenance.
    for (tuple, p) in result.tuples(mutual) {
        let c = core_result.provenance(tuple);
        assert!(poly_leq(&c, p), "core must be ≤ pipeline provenance");
    }
    println!("\ncore ≤ pipeline provenance for every derived fact: ✓");
}
