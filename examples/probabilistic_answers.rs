//! Query answering with confidence scores (paper §1: "query answering in
//! probabilistic databases" as a provenance consumer), using the
//! Viterbi/fuzzy semiring: each source tuple has a confidence in `[0,1]`;
//! an output tuple's confidence is the best derivation's joint confidence.
//!
//! The example shows why feeding the tool the core provenance matters:
//! the *full* polynomial of a non-p-minimal query contains derivations
//! with squared factors (`s·s`), which under-report confidence; the core
//! provenance fixes this without changing the query the engine runs.
//!
//! Run with: `cargo run --example probabilistic_answers`

use provmin::prelude::*;

fn main() {
    // Extracted facts with extraction confidences.
    let mut db = Database::new();
    db.add("Cites", &["p1", "p2"], "ocr_1");
    db.add("Cites", &["p2", "p1"], "ocr_2");
    db.add("Cites", &["p3", "p3"], "ocr_3"); // a self-citation

    let confidence = Valuation::constant(Confidence::one())
        .with(Annotation::new("ocr_1"), Confidence::from_f64(0.9))
        .with(Annotation::new("ocr_2"), Confidence::from_f64(0.8))
        .with(Annotation::new("ocr_3"), Confidence::from_f64(0.6));

    // Mutual citations, as the engine's optimizer chose to phrase it.
    let q = parse_cq("ans(x) :- Cites(x,y), Cites(y,x)").expect("parses");
    let result = eval_cq(&q, &db);

    println!(
        "{:<8} {:<28} {:>10} {:>10}",
        "paper", "provenance", "full conf", "core conf"
    );
    for (tuple, p) in result.iter() {
        let full = confidence.eval(p);
        let core = core_polynomial(p);
        let core_conf = confidence.eval(&core);
        println!(
            "{:<8} {:<28} {:>10.3} {:>10.3}",
            tuple.to_string(),
            p.to_string(),
            full.as_f64(),
            core_conf.as_f64()
        );
    }

    // (p3) is derived as ocr_3·ocr_3 by this query shape: confidence
    // 0.6 · 0.6 = 0.36, even though a single extraction suffices to
    // establish the fact. The core provenance (ocr_3) reports 0.6.
    let t = Tuple::of(&["p3"]);
    let p3_full = confidence.eval(&result.provenance(&t));
    let p3_core = confidence.eval(&core_polynomial(&result.provenance(&t)));
    assert!(p3_full.as_f64() < p3_core.as_f64());
    println!(
        "\n(p3): full provenance under-reports ({:.2} < {:.2}) because the\n\
         query's phrasing squares the annotation; the core provenance is the\n\
         query-plan-independent answer.",
        p3_full.as_f64(),
        p3_core.as_f64()
    );

    // Same story via query rewriting: MinProv's output computes the core
    // confidence natively.
    let minimal = minprov_cq(&q);
    let rewritten = eval_ucq(&minimal, &db);
    let conf_via_query = confidence.eval(&rewritten.provenance(&t));
    assert_eq!(conf_via_query, p3_core);
    println!("\np-minimal rewriting reproduces the core confidence: ✓");
}
